"""Sharded experiment-grid execution over pluggable backends.

Every experiment harness enumerates a grid of independent cells —
(network, node, threshold, tier) combinations, each a deterministic
function of its parameters — and the seed iterated them serially.
:class:`GridRunner` shards those cells and hands the shards to an
:class:`~repro.engine.backends.ExecutorBackend`: the in-process serial
reference, a thread pool, the *persistent* warm process pool (created
once per worker count, reused across harness and designer runs), or the
TCP coordinator that fans shards out to ``repro.engine.worker`` daemons
on other machines.  Cells that opt into ``cache_dir`` share the on-disk
objective/fitness caches
(:class:`~repro.engine.diskcache.FitnessDiskCache`) as their
cross-process — and, on a shared filesystem, cross-node — store.

Determinism contract: results are reassembled by shard index and cells
keep their submission order inside each shard, so the returned list is
identical — values and ordering — for one shard, two shards, N shards,
every backend, and the serial reference mode.  Cells must be pure
functions of their arguments (module-level callables, picklable
argument tuples); that purity is also what makes the remote backend's
fault tolerance free, because a reassigned cell recomputes the same
answer anywhere.

The warm-pool helpers (``shared_process_pool`` and friends) live in
:mod:`repro.engine.backends` and are re-exported here for
compatibility.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Any, Callable, List, Optional, Sequence

from repro.engine.backends import (  # noqa: F401  (compat re-exports)
    Cell,
    ExecutorBackend,
    backend_names,
    create_backend,
    discard_process_pool,
    in_pool_worker,
    run_shard,
    shared_process_pool,
    shutdown_shared_pools,
)
from repro.errors import ExperimentError


#: Modes that dispatch through the remote coordinator (and therefore
#: accept ``coordinator=``, ``workers=0``, and per-cell sharding).
REMOTE_MODES = ("remote", "remote-fallback")


def grid_modes() -> tuple:
    """Valid ``GridConfig.mode`` values — ``auto`` plus the registry.

    Computed on demand so backends registered after this module was
    imported (the whole point of :func:`register_backend`) become valid
    modes immediately.
    """
    return ("auto",) + backend_names()


@dataclass(frozen=True)
class GridConfig:
    """Execution policy for experiment grids.

    Attributes:
        mode: ``auto`` or a registered backend name (``serial`` /
            ``thread`` / ``process`` / ``remote``).  ``auto`` resolves
            to ``process`` on multi-CPU machines with more than one
            cell, else ``serial``; it never resolves to ``remote``.
        workers: pool size for the parallel modes (default: CPU count).
            In ``remote`` mode this is the number of *local* worker
            daemons spawned for the run (default 2); ``0`` means no
            local spawning — externally started workers
            (``python -m repro.engine.worker --connect HOST:PORT``) do
            all the work and may join while the run is in flight.
        shards: number of contiguous cell groups dispatched as units
            (default: one per worker; in ``remote`` mode one per cell,
            so joining workers and reassignment stay fine-grained).
            Shard count changes scheduling granularity only, never
            results.
        coordinator: ``HOST:PORT`` the remote coordinator binds
            (default ``127.0.0.1:0`` — loopback, ephemeral port).  Bind
            a routable host to accept workers from other machines.
    """

    mode: str = "auto"
    workers: Optional[int] = None
    shards: Optional[int] = None
    coordinator: Optional[str] = None

    def __post_init__(self) -> None:
        modes = grid_modes()
        if self.mode not in modes:
            raise ExperimentError(
                f"unknown grid mode {self.mode!r}; expected one of {modes}"
            )
        minimum_workers = 0 if self.mode in REMOTE_MODES else 1
        if self.workers is not None and self.workers < minimum_workers:
            raise ExperimentError(
                f"workers must be >= {minimum_workers}, got {self.workers}"
            )
        if self.shards is not None and self.shards < 1:
            raise ExperimentError(f"shards must be >= 1, got {self.shards}")
        if self.coordinator is not None and self.mode not in REMOTE_MODES:
            raise ExperimentError(
                f"coordinator is only meaningful with modes {REMOTE_MODES}, "
                f"got mode={self.mode!r}"
            )

    def resolved_workers(self) -> int:
        return self.workers if self.workers is not None else (os.cpu_count() or 1)


class GridRunner:
    """Deterministically ordered map over independent experiment cells.

    Args:
        config: execution policy (defaults to ``auto``).

    ``map(fn, cells)`` returns ``[fn(*cell) for cell in cells]`` in cell
    order for every mode and shard count; sharding can only change
    *where* and *when* a cell runs, never what is returned or in which
    slot.  A broken process pool degrades to the serial reference, and
    a remote worker dying mid-cell has the cell reassigned (results are
    a pure function of the cells, so the answer is the same — only
    slower).
    """

    def __init__(self, config: Optional[GridConfig] = None):
        self.config = config or GridConfig()

    def resolved_mode(self, n_cells: int) -> str:
        mode = self.config.mode
        if mode != "auto":
            return mode
        if n_cells > 1 and self.config.resolved_workers() > 1:
            return "process"
        return "serial"

    def shard_cells(
        self, cells: Sequence[Cell], default_count: Optional[int] = None
    ) -> List[List[Cell]]:
        """Split cells into contiguous shards preserving order.

        Concatenating the shards in index order restores the input
        exactly; shard sizes differ by at most one cell.  The shard
        count is ``config.shards`` when set, else ``default_count``,
        else one shard per resolved worker.
        """
        cells = list(cells)
        count = self.config.shards
        if count is None:
            count = (
                default_count
                if default_count is not None
                else min(len(cells), self.config.resolved_workers())
            )
        count = max(1, min(count, len(cells)))
        base, extra = divmod(len(cells), count)
        shards: List[List[Cell]] = []
        start = 0
        for index in range(count):
            stop = start + base + (1 if index < extra else 0)
            shards.append(cells[start:stop])
            start = stop
        return shards

    def backend(self, mode: str, n_shards: int) -> ExecutorBackend:
        """Instantiate the executor backend for a resolved mode."""
        workers = self.config.resolved_workers()
        if mode == "thread":
            workers = min(workers, max(1, n_shards))
        return create_backend(
            mode,
            workers=workers,
            coordinator=self.config.coordinator,
            # remote: spawn exactly the configured count (0 = external
            # workers only); None falls back to the backend default of 2
            spawn=self.config.workers if mode in REMOTE_MODES else None,
        )

    def map(self, fn: Callable[..., Any], cells: Sequence[Cell]) -> List[Any]:
        """Evaluate ``fn(*cell)`` for every cell, results in cell order.

        ``fn`` must be a module-level callable and cells picklable
        tuples (the process and remote backends ship both to the
        workers).
        """
        cells = [tuple(cell) for cell in cells]
        if not cells:
            return []
        mode = self.resolved_mode(len(cells))
        if (mode == "process" or mode in REMOTE_MODES) and in_pool_worker():
            mode = "serial"  # no nested fan-out — see in_pool_worker()
        if mode == "serial" or (len(cells) == 1 and mode not in REMOTE_MODES):
            return run_shard(fn, cells)

        shards = self.shard_cells(
            cells, default_count=len(cells) if mode in REMOTE_MODES else None
        )
        backend = self.backend(mode, n_shards=len(shards))
        shard_results = backend.map_shards(fn, shards)
        return [result for shard in shard_results for result in shard]

    def map_batches(
        self,
        fn: Callable[..., List[Any]],
        items: Sequence[Any],
        extra: Sequence[Any] = (),
    ) -> List[Any]:
        """Evaluate ``fn(batch, *extra)`` over contiguous item batches.

        For callables that are *batch-decomposable* — ``fn`` returns one
        result per item of its batch and ``fn(a + b) == fn(a) + fn(b)``
        — this fans a single large batch out over the configured
        backend as contiguous sub-batches (one cell per sub-batch,
        sized by ``config.shards`` or one per resolved worker) and
        concatenates the per-batch results in item order.  The batched
        accuracy stage uses it to shard a multiplier stack into
        sub-stacks that each keep the one-pass
        :meth:`~repro.nn.inference.QuantCNN.forward_stack` advantage.

        Returns exactly ``list(fn(items, *extra))`` for every mode,
        batch count, and backend; in ``serial`` resolution the single
        full-batch call is used directly.
        """
        items = list(items)
        if not items:
            return []
        extra = tuple(extra)
        mode = self.resolved_mode(len(items))
        if (mode == "process" or mode in REMOTE_MODES) and in_pool_worker():
            mode = "serial"  # no nested fan-out — see in_pool_worker()
        if mode == "serial":
            return list(fn(items, *extra))
        batches = self.shard_cells(items)
        if len(batches) == 1:
            return list(fn(items, *extra))
        cells = [(batch,) + extra for batch in batches]
        results = self.map(fn, cells)
        return [value for batch_result in results for value in batch_result]
