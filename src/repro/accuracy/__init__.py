"""Accuracy-impact models (ApproxTrain substitute).

Two complementary paths:

* :mod:`repro.accuracy.analytical` — closed-form error propagation:
  multiplier error moments (under a DNN-like operand distribution) are
  propagated through the network depth to a relative logit-noise level,
  then mapped to a top-1 accuracy drop.  Fast enough to sit inside the
  GA fitness function.
* :mod:`repro.accuracy.behavioral` — actually runs a small quantised
  CNN with the approximate multiplier's LUT (exactly ApproxTrain's
  mechanism) on the synthetic task, to validate that the analytical
  model ranks multipliers correctly.

:mod:`repro.accuracy.predictor` packages both behind one interface.
"""

from repro.accuracy.analytical import (
    AnalyticalAccuracyModel,
    multiplier_relative_rmse,
)
from repro.accuracy.behavioral import BehavioralValidator
from repro.accuracy.predictor import AccuracyPredictor

__all__ = [
    "AnalyticalAccuracyModel",
    "multiplier_relative_rmse",
    "BehavioralValidator",
    "AccuracyPredictor",
]
