"""Accumulator-approximation accuracy analysis (extension).

Why does the paper approximate multipliers but not accumulators?  This
module quantifies the asymmetry:

* A **multiplier** error is drawn once per product; summing ``C*R*S``
  products averages independent errors, so output noise grows like
  ``sqrt(CRS)`` while the signal grows the same way — the relative
  noise per layer is roughly reduction-independent.
* An **accumulator** error is injected on *every* addition in the
  running sum.  Dropped low-order carries are systematically one-signed
  per operand pattern, so the error accumulates ~linearly in ``CRS``
  while the signal still grows like ``sqrt(CRS)`` for zero-centred
  operands: relative noise *grows* with the reduction length.

The analysis plugs exhaustive adder error moments into the same
propagation/logistic machinery as the multiplier model, so the two are
directly comparable at iso-area-savings.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from typing import Union

import numpy as np

from repro.accuracy.analytical import AnalyticalAccuracyModel
from repro.approx.adders import loa_adder
from repro.approx.metrics import compute_error_metrics, exact_sums
from repro.circuits.area import netlist_ge
from repro.circuits.simulate import bus_to_uint, exhaustive_table
from repro.circuits.synthesis import ripple_carry_adder
from repro.dataflow.network import Network
from repro.errors import AccuracyModelError
from repro.nn.zoo import workload

#: Adder width analysed (a slice of the PE's accumulator critical band:
#: the low bits where approximation is applied).
ANALYSIS_WIDTH = 8


@dataclass(frozen=True)
class AccumulatorApproximation:
    """Area/error figures for one approximate-accumulator choice.

    Attributes:
        approx_bits: OR-folded low bits of the accumulator adder.
        area_saving_ge: adder cells saved vs the exact ripple adder.
        per_add_bias: mean signed error of one addition.
        per_add_std: standard deviation of one addition's error.
    """

    approx_bits: int
    area_saving_ge: float
    per_add_bias: float
    per_add_std: float


@lru_cache(maxsize=None)
def characterize_loa_accumulator(approx_bits: int) -> AccumulatorApproximation:
    """Exhaustive error moments of a LOA accumulator slice."""
    if not 0 < approx_bits < ANALYSIS_WIDTH:
        raise AccuracyModelError(
            f"approx_bits must be in (0, {ANALYSIS_WIDTH}), got {approx_bits}"
        )
    exact = ripple_carry_adder(ANALYSIS_WIDTH)
    approx = loa_adder(ANALYSIS_WIDTH, approx_bits)

    outputs = exhaustive_table(approx.netlist, [approx.a_wires, approx.b_wires])
    table = bus_to_uint(outputs, list(approx.result_wires)).astype(np.int64)
    metrics = compute_error_metrics(
        table,
        ANALYSIS_WIDTH,
        ANALYSIS_WIDTH,
        reference=exact_sums(ANALYSIS_WIDTH, ANALYSIS_WIDTH),
    )
    return AccumulatorApproximation(
        approx_bits=approx_bits,
        area_saving_ge=netlist_ge(exact.netlist) - netlist_ge(approx.netlist),
        per_add_bias=metrics.bias,
        per_add_std=float(np.sqrt(metrics.variance)),
    )


def accumulator_drop_percent(
    network: Union[str, Network],
    approx_bits: int,
    model: AnalyticalAccuracyModel | None = None,
) -> float:
    """Predicted accuracy drop from approximating the accumulator.

    Propagation: over a reduction of length ``CRS`` the bias term adds
    coherently (``CRS * bias``) and the random term adds in quadrature
    (``sqrt(CRS) * std``).  Both are normalised by the accumulated
    signal magnitude (~``sqrt(CRS) * rms_product``), then fed through
    the same depth/logistic mapping as the multiplier model so numbers
    are directly comparable.
    """
    model = model or AnalyticalAccuracyModel()
    net = workload(network) if isinstance(network, str) else network
    depth = len(net.compute_layers())
    if depth < 1:
        raise AccuracyModelError(f"network {net.name!r} has no MAC layers")

    character = characterize_loa_accumulator(approx_bits)

    # representative reduction length: MACs per output element,
    # averaged over compute layers
    from repro.dataflow.layers import ConvLayer, FCLayer

    reductions = []
    for layer in net.compute_layers():
        if isinstance(layer, ConvLayer):
            reductions.append(float(layer.macs_per_output))
        elif isinstance(layer, FCLayer):
            reductions.append(float(layer.in_features))
    crs = max(float(np.mean(reductions)) if reductions else 1.0, 1.0)

    from repro.accuracy.analytical import _rms_exact_product

    rms_signal = _rms_exact_product(8, 0.25) * np.sqrt(crs)
    coherent = abs(character.per_add_bias) * crs
    random = character.per_add_std * np.sqrt(crs)
    rel = float(np.sqrt(coherent**2 + random**2) / rms_signal)

    logit_noise = model.noise_gain * np.sqrt(depth) * rel
    return float(
        model.max_drop_percent * (1.0 - np.exp(-(logit_noise**model.exponent)))
    )


def iso_area_comparison(
    network: Union[str, Network],
    approx_bits: int,
    library,
    predictor,
) -> dict:
    """Accuracy cost of accumulator vs multiplier approximation at
    matched area savings.

    The multiplier side is represented by the *lowest-drop* library
    entry whose area saving is at least the accumulator's (i.e. "what
    does it cost the multiplier lever to save the same area?").  If no
    entry saves that much, the largest-saving entry is used.

    Returns a dictionary with both drops and both area savings.
    """
    character = characterize_loa_accumulator(approx_bits)
    accumulator_drop = accumulator_drop_percent(network, approx_bits)

    exact_area = library.exact.area_ge
    approximates = [m for m in library if not m.is_exact]
    if not approximates:
        raise AccuracyModelError("library has no approximate entries")
    matching = [
        m
        for m in approximates
        if exact_area - m.area_ge >= character.area_saving_ge
    ]
    if matching:
        closest = min(
            matching, key=lambda m: predictor.drop_percent(network, m)
        )
    else:
        closest = min(approximates, key=lambda m: m.area_ge)
    multiplier_drop = predictor.drop_percent(network, closest)

    return {
        "approx_bits": approx_bits,
        "area_saving_ge": character.area_saving_ge,
        "accumulator_drop_percent": accumulator_drop,
        "multiplier_name": closest.name,
        "multiplier_area_saving_ge": exact_area - closest.area_ge,
        "multiplier_drop_percent": multiplier_drop,
    }
