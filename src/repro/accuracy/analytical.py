"""Closed-form multiplier-error -> accuracy-drop model.

Model derivation (documented in DESIGN.md as the ApproxTrain
substitution):

1. Under a zero-centred DNN operand distribution, one approximate
   multiplication contributes an error with moments (bias, variance)
   taken from the multiplier's exhaustive DNN-weighted statistics.
2. A conv output accumulates C*R*S such products.  Error terms are
   approximately independent across the reduction, so output noise
   relative to output signal is ``rel = sqrt(var + bias^2) / rms_prod``
   — to first order independent of the reduction length (both error and
   signal grow with the same sqrt factor, while the bias component is
   largely absorbed by the per-layer requantisation scale).
3. Per-layer relative noise compounds across the ``L`` MAC-executing
   layers; with independent layer contributions the logit-level noise
   grows like ``sqrt(L) * rel``.
4. Top-1 accuracy drop as a function of logit noise is modelled by a
   saturating exponential, calibrated so the library's precision-scaled
   multipliers produce drops in the 0.1-10% range the approximate-DNN
   literature reports for 8-bit CNNs.

The model is a *surrogate*: absolute drops carry model error, but the
ranking across multipliers is what the DSE consumes, and that ranking
is validated against behavioural LUT simulation in
:mod:`repro.accuracy.behavioral`.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from typing import Union

import numpy as np

from repro.approx.library import ApproxMultiplier
from repro.approx.metrics import exact_products, gaussian_operand_distribution
from repro.dataflow.network import Network
from repro.errors import AccuracyModelError
from repro.nn.zoo import workload

#: Operand-distribution width used for the DNN-weighted moments; must
#: match :func:`repro.approx.library.build_library`'s default.
DNN_SIGMA_FRACTION = 0.25


@lru_cache(maxsize=None)
def _rms_exact_product(width: int, sigma_fraction: float) -> float:
    """RMS of the exact product under the DNN operand distribution."""
    weights = gaussian_operand_distribution(width, sigma_fraction)
    exact = exact_products(width, width).astype(np.float64)
    n = 1 << width
    case_weights = np.tile(weights, n) * np.repeat(weights, n)
    rms = float(np.sqrt(np.sum(exact**2 * case_weights)))
    if rms <= 0:
        raise AccuracyModelError("degenerate operand distribution")
    return rms


def multiplier_relative_rmse(
    multiplier: ApproxMultiplier,
    sigma_fraction: float = DNN_SIGMA_FRACTION,
) -> float:
    """Per-multiplication relative error under DNN-like operands.

    ``sqrt(variance + bias^2) / rms(exact product)`` using the
    multiplier's exhaustive DNN-weighted moments.
    """
    width = multiplier.lut.a_width
    rms = _rms_exact_product(width, sigma_fraction)
    moment2 = multiplier.dnn_metrics.variance + multiplier.dnn_metrics.bias**2
    return float(np.sqrt(max(moment2, 0.0)) / rms)


@dataclass(frozen=True)
class AnalyticalAccuracyModel:
    """Calibrated error-propagation accuracy model.

    Attributes:
        noise_gain: coefficient on per-layer relative noise (k in the
            derivation above).
        exponent: mild super-linearity of the drop near zero.
        max_drop_percent: saturation level (a fully broken multiplier
            cannot lose more than top-1 accuracy itself).
    """

    noise_gain: float = 0.25
    exponent: float = 1.1
    max_drop_percent: float = 90.0

    def __post_init__(self) -> None:
        if self.noise_gain <= 0 or self.exponent <= 0:
            raise AccuracyModelError(
                "noise_gain and exponent must be positive"
            )
        if not 0 < self.max_drop_percent <= 100:
            raise AccuracyModelError("max_drop_percent must be in (0, 100]")

    def drop_percent(
        self,
        network: Union[str, Network],
        multiplier: ApproxMultiplier,
    ) -> float:
        """Predicted top-1 accuracy drop (percentage points).

        Args:
            network: workload name or :class:`Network`.
            multiplier: library entry to evaluate.
        """
        net = workload(network) if isinstance(network, str) else network
        depth = len(net.compute_layers())
        if depth < 1:
            raise AccuracyModelError(
                f"network {net.name!r} has no MAC layers"
            )
        rel = multiplier_relative_rmse(multiplier)
        if rel == 0.0:
            return 0.0
        logit_noise = self.noise_gain * np.sqrt(depth) * rel
        drop = self.max_drop_percent * (
            1.0 - np.exp(-(logit_noise**self.exponent))
        )
        return float(drop)
