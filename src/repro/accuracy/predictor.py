"""Unified accuracy interface for the design-space exploration.

The GA asks one question thousands of times: *"what accuracy drop does
multiplier m cause on network n?"*.  :class:`AccuracyPredictor` answers
it from the analytical model with memoisation, and exposes the helpers
the experiment harnesses need (feasible multiplier sets per threshold,
behavioural cross-checks).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple, Union

from repro.accuracy.analytical import AnalyticalAccuracyModel
from repro.accuracy.behavioral import BehavioralValidator
from repro.approx.library import ApproxLibrary, ApproxMultiplier
from repro.dataflow.network import Network
from repro.errors import AccuracyModelError


@dataclass
class AccuracyPredictor:
    """Memoised accuracy-drop oracle over (network, multiplier).

    Attributes:
        model: the analytical error-propagation model.
        validator: behavioural cross-check engine (built lazily).
    """

    model: AnalyticalAccuracyModel = field(default_factory=AnalyticalAccuracyModel)
    validator: Optional[BehavioralValidator] = None
    _cache: Dict[Tuple[str, str], float] = field(default_factory=dict, repr=False)

    def drop_percent(
        self,
        network: Union[str, Network],
        multiplier: ApproxMultiplier,
    ) -> float:
        """Predicted top-1 accuracy drop in percentage points."""
        net_name = network if isinstance(network, str) else network.name
        key = (net_name, multiplier.name)
        cached = self._cache.get(key)
        if cached is not None:
            return cached
        drop = self.model.drop_percent(network, multiplier)
        self._cache[key] = drop
        return drop

    def feasible_multipliers(
        self,
        network: Union[str, Network],
        library: ApproxLibrary,
        max_drop_percent: float,
    ) -> List[ApproxMultiplier]:
        """Library entries meeting an accuracy constraint, any area."""
        if max_drop_percent < 0:
            raise AccuracyModelError(
                f"accuracy threshold cannot be negative: {max_drop_percent}"
            )
        return [
            m
            for m in library
            if self.drop_percent(network, m) <= max_drop_percent
        ]

    def smallest_feasible(
        self,
        network: Union[str, Network],
        library: ApproxLibrary,
        max_drop_percent: float,
    ) -> ApproxMultiplier:
        """Smallest-area entry meeting an accuracy constraint."""
        feasible = self.feasible_multipliers(network, library, max_drop_percent)
        if not feasible:
            raise AccuracyModelError(
                f"no multiplier meets a {max_drop_percent}% drop budget"
            )
        return min(feasible, key=lambda m: (m.area_ge, m.metrics.nmed))

    # --- behavioural cross-check ------------------------------------------

    def ensure_validator(
        self, validator: Optional[BehavioralValidator] = None
    ) -> BehavioralValidator:
        """Install (or lazily create) the behavioural cross-check engine.

        Harnesses pass a validator configured with their execution
        policy (``stack_workers`` thread tiling and/or a grid runner
        that shards sub-stacks over an execution backend); the default
        is the plain in-process validator.  Every configuration returns
        bit-identical drops, so swapping validators only changes where
        the stacked inference runs.
        """
        if validator is not None:
            self.validator = validator
        elif self.validator is None:
            self.validator = BehavioralValidator()
        return self.validator

    def behavioral_agreement(
        self,
        library: ApproxLibrary,
        validator: Optional[BehavioralValidator] = None,
    ) -> float:
        """Spearman correlation of analytical vs behavioural ranking.

        Uses a small synthetic network as the behavioural workload; the
        analytical drops are computed for the same shallow depth so both
        sides describe the same setting.  The behavioural side scores
        the whole library through stacked inference
        (:meth:`BehavioralValidator.drop_percents`) rather than one full
        CNN run per multiplier — sharded over the validator's execution
        backend when one is configured.
        """
        checker = self.ensure_validator(validator)
        multipliers = list(library)
        analytical = [
            self.model.drop_percent("vgg16", m) for m in multipliers
        ]
        return checker.ranking_agreement(multipliers, analytical)
