"""Behavioural accuracy validation via LUT-based inference.

Runs the synthetic task's quantised CNN with each multiplier's LUT —
the identical mechanism ApproxTrain uses on real GPUs — and compares
the resulting accuracy drops against the analytical model's ranking.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Sequence

import numpy as np

from repro.approx.library import ApproxMultiplier
from repro.errors import AccuracyModelError
from repro.nn.synthetic import SyntheticTask, make_task


@dataclass
class BehavioralValidator:
    """Evaluate multipliers by actually running a quantised CNN.

    Attributes:
        task: the synthetic classification task (built lazily with the
            default seed when not supplied).
    """

    task: Optional[SyntheticTask] = None
    _cache: Dict[str, float] = field(default_factory=dict, repr=False)
    _exact_accuracy: Optional[float] = field(default=None, repr=False)

    def _ensure_task(self) -> SyntheticTask:
        if self.task is None:
            self.task = make_task()
        return self.task

    def exact_accuracy(self) -> float:
        """Reference accuracy with exact arithmetic (computed once).

        The exact baseline is a constant per task, so it is memoised
        instead of re-running the full inference on every
        :meth:`drop_percent` query.
        """
        if self._exact_accuracy is None:
            self._exact_accuracy = self._ensure_task().accuracy()
        return self._exact_accuracy

    def drop_percent(self, multiplier: ApproxMultiplier) -> float:
        """Measured accuracy drop (percentage points) for a multiplier."""
        cached = self._cache.get(multiplier.name)
        if cached is not None:
            return cached
        task = self._ensure_task()
        exact = self.exact_accuracy()
        approx = task.accuracy(multiplier.lut)
        drop = 100.0 * (exact - approx)
        self._cache[multiplier.name] = drop
        return drop

    def ranking_agreement(
        self,
        multipliers: Sequence[ApproxMultiplier],
        analytical_drops: Sequence[float],
    ) -> float:
        """Spearman rank correlation between model and measurement.

        Measured behavioural drops are noisy (finite test set), so the
        validation criterion is rank agreement, not absolute agreement.
        """
        if len(multipliers) != len(analytical_drops):
            raise AccuracyModelError(
                "multipliers and analytical_drops must align"
            )
        if len(multipliers) < 3:
            raise AccuracyModelError(
                "need at least 3 multipliers for a meaningful correlation"
            )
        measured = [self.drop_percent(m) for m in multipliers]
        return _spearman(np.asarray(analytical_drops), np.asarray(measured))


def _spearman(a: np.ndarray, b: np.ndarray) -> float:
    """Spearman rank correlation (average ranks for ties)."""
    ra = _ranks(a)
    rb = _ranks(b)
    ra_c = ra - ra.mean()
    rb_c = rb - rb.mean()
    denom = np.sqrt((ra_c**2).sum() * (rb_c**2).sum())
    if denom == 0:
        return 0.0
    return float((ra_c * rb_c).sum() / denom)


def _ranks(values: np.ndarray) -> np.ndarray:
    """Ranks with ties assigned their average rank."""
    unique, inverse, counts = np.unique(
        values, return_inverse=True, return_counts=True
    )
    cumulative = np.concatenate([[0], np.cumsum(counts)])
    tie_rank = {
        i: (cumulative[i] + cumulative[i + 1] - 1) / 2.0
        for i in range(len(unique))
    }
    return np.array([tie_rank[i] for i in inverse], dtype=np.float64)
