"""Behavioural accuracy validation via LUT-based inference.

Runs the synthetic task's quantised CNN with each multiplier's LUT —
the identical mechanism ApproxTrain uses on real GPUs — and compares
the resulting accuracy drops against the analytical model's ranking.

Library-wide queries go through :meth:`BehavioralValidator.drop_percents`,
which scores every uncached multiplier in one stacked inference
(:meth:`~repro.nn.inference.QuantCNN.forward_stack`) instead of one full
inference per multiplier; :meth:`drop_percent` stays as the scalar
reference the property tests compare against.

The accuracy stage is a full engine client: the stacked inference
itself tiles across threads (the ``stack_workers`` knob), and a
validator given a :class:`~repro.engine.grid.GridRunner` shards the
uncached multipliers into contiguous *sub-stacks* dispatched through
the :class:`~repro.engine.backends.ExecutorBackend` registry — the
warm process pool or a remote worker fleet score a paper-scale library
exactly like the GA grids, with results bit-identical to the
in-process path (accuracy per multiplier is independent of the stack
it rides in).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Union

import numpy as np

from repro.approx.library import ApproxMultiplier
from repro.engine.grid import ExecutionPlan, GridRunner
from repro.errors import AccuracyModelError
from repro.nn.synthetic import SyntheticTask, make_task


def _accuracy_batch_cell(
    luts: Sequence,
    task: SyntheticTask,
    stack_workers: Optional[Union[int, str]],
    kernel_tier: Optional[str] = None,
) -> List[float]:
    """One sub-stack accuracy cell (module-level so backends pickle it).

    Pure in its arguments: every backend computes the identical float
    accuracies for a given sub-stack, so sharding cannot change
    results, only where the stacked inference runs.  ``kernel_tier``
    picks the compiled gather kernel (bit-identical across tiers; an
    unavailable tier degrades to numpy in the executing process).
    """
    return [
        float(value)
        for value in task.accuracy_batch(
            luts, stack_workers=stack_workers, kernel_tier=kernel_tier
        )
    ]


@dataclass
class BehavioralValidator:
    """Evaluate multipliers by actually running a quantised CNN.

    Attributes:
        task: the synthetic classification task (built lazily with the
            default seed when not supplied).
        stack_workers: thread-tiling knob for the stacked inference
            (``"auto"`` / positive int / ``None`` for the process
            default); bit-identical for every value.
        kernel_tier: compiled-kernel tier for the stacked gather loop
            (``None`` = ambient default; every tier is bit-identical,
            see :mod:`repro.engine.kernels`).
        runner: optional grid runner; when set, library-wide queries
            shard multiplier sub-stacks through its execution backend
            (serial / thread / process / remote).  ``None`` keeps the
            single in-process stacked pass.
    """

    task: Optional[SyntheticTask] = None
    stack_workers: Optional[Union[int, str]] = None
    kernel_tier: Optional[str] = None
    runner: Optional[GridRunner] = None
    _cache: Dict[str, float] = field(default_factory=dict, repr=False)
    _exact_accuracy: Optional[float] = field(default=None, repr=False)

    def _ensure_task(self) -> SyntheticTask:
        if self.task is None:
            self.task = make_task()
        return self.task

    def exact_accuracy(self) -> float:
        """Reference accuracy with exact arithmetic (computed once).

        The exact baseline is a constant per task, so it is memoised
        instead of re-running the full inference on every
        :meth:`drop_percent` query.
        """
        if self._exact_accuracy is None:
            self._exact_accuracy = self._ensure_task().accuracy()
        return self._exact_accuracy

    def drop_percent(self, multiplier: ApproxMultiplier) -> float:
        """Measured accuracy drop (percentage points) for a multiplier.

        This is the scalar reference path (one full inference per
        multiplier); use :meth:`drop_percents` to score many multipliers
        in one batched inference.
        """
        cached = self._cache.get(multiplier.name)
        if cached is not None:
            return cached
        task = self._ensure_task()
        exact = self.exact_accuracy()
        approx = task.accuracy(multiplier.lut)
        drop = 100.0 * (exact - approx)
        self._cache[multiplier.name] = drop
        return drop

    def drop_percents(
        self, multipliers: Sequence[ApproxMultiplier]
    ) -> List[float]:
        """Measured drops for many multipliers via one stacked inference.

        All uncached multipliers are run through the quantised CNN in
        library-batched passes; returned values are bit-identical to
        calling :meth:`drop_percent` per multiplier (and populate the
        same cache).  With a :attr:`runner`, the uncached stack is
        split into contiguous sub-stacks dispatched through the
        configured execution backend; accuracy per multiplier does not
        depend on which sub-stack carries it, so every backend and
        sub-stack count returns the in-process result bit for bit.
        Mixed operand widths fall back to the scalar loop.
        """
        pending: List[ApproxMultiplier] = []
        seen = set()
        for multiplier in multipliers:
            if multiplier.name not in self._cache and multiplier.name not in seen:
                pending.append(multiplier)
                seen.add(multiplier.name)
        if pending:
            task = self._ensure_task()
            exact = self.exact_accuracy()
            luts = [m.lut for m in pending]
            widths = {(lut.a_width, lut.b_width) for lut in luts}
            if len(widths) == 1:
                if self.runner is None:
                    accuracies = _accuracy_batch_cell(
                        luts, task, self.stack_workers, self.kernel_tier
                    )
                else:
                    accuracies = self.runner.run(
                        ExecutionPlan.for_batches(
                            _accuracy_batch_cell,
                            luts,
                            extra=(task, self.stack_workers, self.kernel_tier),
                        )
                    )
            else:  # mixed geometries have no shared stack index space
                accuracies = np.array([task.accuracy(lut) for lut in luts])
            for multiplier, approx in zip(pending, accuracies):
                self._cache[multiplier.name] = 100.0 * (exact - float(approx))
        return [self._cache[m.name] for m in multipliers]

    def ranking_agreement(
        self,
        multipliers: Sequence[ApproxMultiplier],
        analytical_drops: Sequence[float],
    ) -> float:
        """Spearman rank correlation between model and measurement.

        Measured behavioural drops are noisy (finite test set), so the
        validation criterion is rank agreement, not absolute agreement.
        """
        if len(multipliers) != len(analytical_drops):
            raise AccuracyModelError(
                "multipliers and analytical_drops must align"
            )
        if len(multipliers) < 3:
            raise AccuracyModelError(
                "need at least 3 multipliers for a meaningful correlation"
            )
        measured = self.drop_percents(multipliers)
        return _spearman(np.asarray(analytical_drops), np.asarray(measured))


def _spearman(a: np.ndarray, b: np.ndarray) -> float:
    """Spearman rank correlation (average ranks for ties)."""
    ra = _ranks(a)
    rb = _ranks(b)
    ra_c = ra - ra.mean()
    rb_c = rb - rb.mean()
    denom = np.sqrt((ra_c**2).sum() * (rb_c**2).sum())
    if denom == 0:
        return 0.0
    return float((ra_c * rb_c).sum() / denom)


def _ranks(values: np.ndarray) -> np.ndarray:
    """Ranks with ties assigned their average rank."""
    unique, inverse, counts = np.unique(
        values, return_inverse=True, return_counts=True
    )
    cumulative = np.concatenate([[0], np.cumsum(counts)])
    tie_rank = {
        i: (cumulative[i] + cumulative[i + 1] - 1) / 2.0
        for i in range(len(unique))
    }
    return np.array([tie_rank[i] for i in inverse], dtype=np.float64)
