"""Whole-network workload container."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, List, Tuple

from repro.dataflow.layers import ConvLayer, FCLayer, Layer, PoolLayer
from repro.errors import WorkloadError


@dataclass(frozen=True)
class Network:
    """An ordered DNN workload.

    Attributes:
        name: workload label (e.g. ``"vgg16"``).
        layers: layers in execution order.
    """

    name: str
    layers: Tuple[Layer, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        if not self.layers:
            raise WorkloadError(f"network {self.name!r} has no layers")
        names = [layer.name for layer in self.layers]
        if len(set(names)) != len(names):
            duplicates = sorted({n for n in names if names.count(n) > 1})
            raise WorkloadError(
                f"network {self.name!r} has duplicate layer names: {duplicates}"
            )

    def __iter__(self) -> Iterator[Layer]:
        return iter(self.layers)

    def __len__(self) -> int:
        return len(self.layers)

    # --- aggregate statistics ------------------------------------------

    @property
    def total_macs(self) -> int:
        """MACs per inference (batch 1)."""
        return sum(layer.macs for layer in self.layers)

    @property
    def total_weight_bytes(self) -> int:
        """Model size in int8 bytes."""
        return sum(layer.weight_bytes for layer in self.layers)

    @property
    def max_activation_bytes(self) -> int:
        """Largest single activation tensor (input or output) in bytes."""
        footprint = 0
        for layer in self.layers:
            footprint = max(footprint, layer.input_bytes, layer.output_bytes)
        return footprint

    def compute_layers(self) -> List[Layer]:
        """Layers that execute MACs on the array (conv + fc)."""
        return [
            layer
            for layer in self.layers
            if isinstance(layer, (ConvLayer, FCLayer))
        ]

    def pool_layers(self) -> List[PoolLayer]:
        return [layer for layer in self.layers if isinstance(layer, PoolLayer)]

    def describe(self) -> str:
        """Multi-line summary used by examples and reports."""
        lines = [
            f"{self.name}: {len(self.layers)} layers, "
            f"{self.total_macs / 1e9:.2f} GMACs, "
            f"{self.total_weight_bytes / 1e6:.1f} MB int8 weights"
        ]
        for layer in self.layers:
            lines.append(
                f"  {layer.name:20s} {type(layer).__name__:10s} "
                f"macs={layer.macs / 1e6:9.2f}M weights={layer.weight_bytes / 1e3:8.1f}KB"
            )
        return "\n".join(lines)
