"""Whole-network schedule analysis.

On top of raw per-layer latencies, the scheduler answers the questions a
designer (or an example script) asks about a candidate accelerator:

* which layers are compute-bound vs. memory-bound,
* whether the global buffer ever has to spill partial sums,
* how much of the inference time each layer class consumes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, List, Tuple

from repro.dataflow.network import Network
from repro.dataflow.performance import (
    DRAM_BANDWIDTH_GB_S,
    LayerPerformance,
    NetworkPerformance,
    evaluate_network,
)

if TYPE_CHECKING:  # pragma: no cover
    from repro.accel.arch import AcceleratorConfig


@dataclass(frozen=True)
class ScheduleReport:
    """Digest of a network schedule on one architecture.

    Attributes:
        performance: the underlying per-layer evaluation.
        compute_bound_layers: layers limited by the MAC array/streaming.
        memory_bound_layers: layers limited by DRAM bandwidth.
        spilling_layers: layers whose reduction chunks spill partial sums.
        time_share: fraction of total latency per layer name.
    """

    performance: NetworkPerformance
    compute_bound_layers: Tuple[str, ...]
    memory_bound_layers: Tuple[str, ...]
    spilling_layers: Tuple[str, ...]
    time_share: Dict[str, float]

    @property
    def fps(self) -> float:
        return self.performance.fps

    def summary(self) -> str:
        """Multi-line human-readable schedule digest."""
        perf = self.performance
        lines = [
            f"{perf.network_name}: {perf.fps:.1f} FPS "
            f"({perf.latency_s * 1e3:.2f} ms/inference) on "
            f"{perf.n_pes} PEs @ {perf.clock_hz / 1e9:.2f} GHz",
            f"  utilization {perf.average_utilization * 100:.1f}%, "
            f"DRAM {perf.total_dram_bytes / 1e6:.1f} MB/inference",
            f"  memory-bound layers: {len(self.memory_bound_layers)}/"
            f"{len(perf.layer_performances)}",
        ]
        worst = perf.bottleneck_layer()
        lines.append(
            f"  bottleneck: {worst.layer_name} "
            f"({self.time_share[worst.layer_name] * 100:.1f}% of latency)"
        )
        if self.spilling_layers:
            lines.append(
                f"  partial-sum spilling in: {', '.join(self.spilling_layers)}"
            )
        return "\n".join(lines)


def _is_memory_bound(record: LayerPerformance) -> bool:
    return record.dram_cycles > record.onchip_cycles


def schedule_network(
    network: Network,
    config: "AcceleratorConfig",
    dram_gb_s: float = DRAM_BANDWIDTH_GB_S,
) -> ScheduleReport:
    """Evaluate and classify a full network schedule."""
    performance = evaluate_network(network, config, dram_gb_s)

    compute_bound: List[str] = []
    memory_bound: List[str] = []
    spilling: List[str] = []
    for record in performance.layer_performances:
        if _is_memory_bound(record):
            memory_bound.append(record.layer_name)
        else:
            compute_bound.append(record.layer_name)
        if record.mapping.nc > 1:
            spilling.append(record.layer_name)

    total = performance.total_cycles
    share = {
        record.layer_name: (record.total_cycles / total if total else 0.0)
        for record in performance.layer_performances
    }
    return ScheduleReport(
        performance=performance,
        compute_bound_layers=tuple(compute_bound),
        memory_bound_layers=tuple(memory_bound),
        spilling_layers=tuple(spilling),
        time_share=share,
    )
