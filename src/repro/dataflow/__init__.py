"""DNN-accelerator performance model (nn-dataflow substitute).

Analytical loop-nest model of an output-stationary 2-D PE array with a
per-PE register file, a shared global buffer and DRAM:

* :mod:`repro.dataflow.layers` — layer shape algebra;
* :mod:`repro.dataflow.network` — whole-network container;
* :mod:`repro.dataflow.mapping` — tiling / loop-order selection;
* :mod:`repro.dataflow.performance` — per-layer latency and network FPS;
* :mod:`repro.dataflow.scheduler` — whole-network schedule analysis.
"""

from repro.dataflow.layers import ConvLayer, FCLayer, PoolLayer, Layer
from repro.dataflow.network import Network
from repro.dataflow.mapping import Mapping, best_mapping
from repro.dataflow.performance import (
    DRAM_BANDWIDTH_GB_S,
    LayerPerformance,
    NetworkPerformance,
    evaluate_layer,
    evaluate_network,
)
from repro.dataflow.scheduler import ScheduleReport, schedule_network

__all__ = [
    "ConvLayer",
    "FCLayer",
    "PoolLayer",
    "Layer",
    "Network",
    "Mapping",
    "best_mapping",
    "DRAM_BANDWIDTH_GB_S",
    "LayerPerformance",
    "NetworkPerformance",
    "evaluate_layer",
    "evaluate_network",
    "ScheduleReport",
    "schedule_network",
]
