"""Per-layer latency and whole-network FPS.

Cost model (first-order, deliberately at nn-dataflow's altitude):

* **compute** — each pass runs ``C*R*S`` MAC cycles per reduction chunk
  plus pipeline fill (array dimensions + depth);
* **global-buffer streaming** — per pass, weights (``ks*crs`` bytes) and
  inputs (``ps*crs / halo-reuse`` bytes) cross the array ports, whose
  bandwidth scales with the array perimeter; the per-PE register file
  sets how well streaming overlaps compute (double buffering needs
  somewhere to stage operands);
* **DRAM** — the mapping's traffic over a fixed external bandwidth,
  overlapped with compute (double-buffered DMA), so layer latency is the
  max of the on-chip time and the DRAM time.

Latencies are cached per (network-layer, architecture-geometry) because
the GA revisits geometries constantly and the multiplier choice does not
affect timing.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, Tuple

from repro.dataflow.layers import ConvLayer, FCLayer, Layer, PoolLayer
from repro.dataflow.mapping import (
    LOOP_ORDERS,
    Mapping,
    PIPELINE_DEPTH,
    _input_halo_reuse,
    build_mapping,
)
from repro.dataflow.network import Network
from repro.errors import MappingError

if TYPE_CHECKING:  # pragma: no cover - type hints only
    from repro.accel.arch import AcceleratorConfig

#: External memory bandwidth (LPDDR5-class edge SoC).
DRAM_BANDWIDTH_GB_S = 25.6

#: Local-buffer size at which operand staging fully double-buffers.
FULL_OVERLAP_LOCAL_BYTES = 64


@dataclass(frozen=True)
class LayerPerformance:
    """Latency breakdown of one layer.

    Attributes:
        layer_name: the layer evaluated.
        mapping: chosen mapping (None-equivalent for pool layers is a
            zero-pass mapping).
        compute_cycles: MAC-array busy cycles.
        stream_cycles: global-buffer streaming cycles.
        onchip_cycles: compute/stream combined under the overlap model.
        dram_cycles: external-memory cycles for the mapping's traffic.
        total_cycles: layer latency in cycles.
        dram_bytes: external traffic in bytes.
        macs: useful MACs executed.
    """

    layer_name: str
    mapping: Mapping
    compute_cycles: float
    stream_cycles: float
    onchip_cycles: float
    dram_cycles: float
    total_cycles: float
    dram_bytes: float
    macs: int

    def utilization(self, n_pes: int) -> float:
        """Achieved MACs / peak MACs over the layer's latency."""
        if self.total_cycles <= 0:
            return 0.0
        return self.macs / (n_pes * self.total_cycles)


@dataclass(frozen=True)
class NetworkPerformance:
    """Whole-network inference performance on one architecture.

    Attributes:
        network_name: workload label.
        layer_performances: per-layer records, in execution order.
        clock_hz: operating frequency used for the time conversion.
        n_pes: array size used for utilisation.
    """

    network_name: str
    layer_performances: Tuple[LayerPerformance, ...]
    clock_hz: float
    n_pes: int

    @property
    def total_cycles(self) -> float:
        return sum(lp.total_cycles for lp in self.layer_performances)

    @property
    def latency_s(self) -> float:
        """Single-inference latency in seconds."""
        return self.total_cycles / self.clock_hz

    @property
    def fps(self) -> float:
        """Inferences per second (the paper's performance metric)."""
        return 1.0 / self.latency_s

    @property
    def total_dram_bytes(self) -> float:
        return sum(lp.dram_bytes for lp in self.layer_performances)

    @property
    def total_macs(self) -> int:
        return sum(lp.macs for lp in self.layer_performances)

    @property
    def average_utilization(self) -> float:
        """MAC-array utilisation over the whole inference."""
        if self.total_cycles <= 0:
            return 0.0
        return self.total_macs / (self.n_pes * self.total_cycles)

    def bottleneck_layer(self) -> LayerPerformance:
        """The layer contributing the most latency."""
        return max(self.layer_performances, key=lambda lp: lp.total_cycles)


# --- single-layer evaluation -------------------------------------------------


def _dram_bytes_per_cycle(config: "AcceleratorConfig", dram_gb_s: float) -> float:
    return dram_gb_s * 1e9 / config.clock_hz


def _array_port_bytes_per_cycle(config: "AcceleratorConfig") -> float:
    """Global-buffer to array bandwidth: one byte per edge port."""
    return float(config.pe_rows + config.pe_cols)


def _overlap_fraction(config: "AcceleratorConfig") -> float:
    """0 = no compute/stream overlap, 1 = perfect double buffering."""
    return min(1.0, config.local_buffer_bytes / FULL_OVERLAP_LOCAL_BYTES)


def _evaluate_mapping(
    layer: Layer,
    mapping: Mapping,
    config: "AcceleratorConfig",
    dram_gb_s: float,
) -> LayerPerformance:
    conv = layer.as_conv() if isinstance(layer, FCLayer) else layer
    assert isinstance(conv, ConvLayer)
    crs = conv.macs_per_output

    fill = config.pe_rows + config.pe_cols + PIPELINE_DEPTH
    # spare rows split the reduction (mapping.rp); a log-depth adder tree
    # folds the partial results, already inside the fill allowance
    reduction_cycles = -(-crs // mapping.rp)  # ceil division
    compute_per_pass = reduction_cycles + mapping.nc * fill
    compute_cycles = float(mapping.passes * compute_per_pass)

    halo_reuse = _input_halo_reuse(conv)
    pass_bytes = mapping.ks * crs + mapping.ps * crs / halo_reuse
    stream_cycles = float(
        mapping.passes * pass_bytes / _array_port_bytes_per_cycle(config)
    )

    overlap = _overlap_fraction(config)
    onchip_cycles = (
        overlap * max(compute_cycles, stream_cycles)
        + (1.0 - overlap) * (compute_cycles + stream_cycles)
    )

    dram_cycles = mapping.dram_total_bytes / _dram_bytes_per_cycle(
        config, dram_gb_s
    )
    total_cycles = max(onchip_cycles, dram_cycles)

    return LayerPerformance(
        layer_name=conv.name,
        mapping=mapping,
        compute_cycles=compute_cycles,
        stream_cycles=stream_cycles,
        onchip_cycles=onchip_cycles,
        dram_cycles=dram_cycles,
        total_cycles=total_cycles,
        dram_bytes=mapping.dram_total_bytes,
        macs=conv.macs,
    )


def select_best_mapping(layer: Layer, config: "AcceleratorConfig") -> Mapping:
    """Evaluate every loop order and return the fastest mapping."""
    best: Tuple[float, Mapping] | None = None
    errors = []
    for order in LOOP_ORDERS:
        try:
            mapping = build_mapping(layer, config, order)
        except MappingError as exc:
            errors.append(str(exc))
            continue
        perf = _evaluate_mapping(layer, mapping, config, DRAM_BANDWIDTH_GB_S)
        if best is None or perf.total_cycles < best[0]:
            best = (perf.total_cycles, mapping)
    if best is None:
        raise MappingError(
            f"no legal mapping for layer {layer.name!r}: {'; '.join(errors)}"
        )
    return best[1]


def _pool_performance(
    layer: PoolLayer, config: "AcceleratorConfig", dram_gb_s: float
) -> LayerPerformance:
    """Pooling: pure data movement through DRAM at full bandwidth."""
    traffic = float(layer.input_bytes + layer.output_bytes)
    dram_cycles = traffic / _dram_bytes_per_cycle(config, dram_gb_s)
    mapping = Mapping(
        layer_name=layer.name,
        k=layer.channels,
        p=layer.out_height * layer.out_width,
        ks=1,
        ps=1,
        rp=1,
        nk=1,
        np_=1,
        nc=1,
        loop_order="k_outer",
        dram_weight_bytes=0.0,
        dram_input_bytes=float(layer.input_bytes),
        dram_output_bytes=float(layer.output_bytes),
    )
    return LayerPerformance(
        layer_name=layer.name,
        mapping=mapping,
        compute_cycles=0.0,
        stream_cycles=0.0,
        onchip_cycles=0.0,
        dram_cycles=dram_cycles,
        total_cycles=dram_cycles,
        dram_bytes=traffic,
        macs=0,
    )


def evaluate_layer(
    layer: Layer,
    config: "AcceleratorConfig",
    dram_gb_s: float = DRAM_BANDWIDTH_GB_S,
) -> LayerPerformance:
    """Latency of one layer on one architecture."""
    if isinstance(layer, PoolLayer):
        return _pool_performance(layer, config, dram_gb_s)
    best: LayerPerformance | None = None
    errors = []
    for order in LOOP_ORDERS:
        try:
            mapping = build_mapping(layer, config, order)
        except MappingError as exc:
            errors.append(str(exc))
            continue
        perf = _evaluate_mapping(layer, mapping, config, dram_gb_s)
        if best is None or perf.total_cycles < best.total_cycles:
            best = perf
    if best is None:
        raise MappingError(
            f"no legal mapping for layer {layer.name!r}: {'; '.join(errors)}"
        )
    return best


# --- whole-network evaluation with caching ------------------------------------

_LayerKey = Tuple[str, str, Tuple, float]
_LAYER_CACHE: Dict[_LayerKey, LayerPerformance] = {}


def evaluate_network(
    network: Network,
    config: "AcceleratorConfig",
    dram_gb_s: float = DRAM_BANDWIDTH_GB_S,
    use_cache: bool = True,
) -> NetworkPerformance:
    """FPS and per-layer latency of a network on an architecture.

    Results are cached by (network name, layer name, architecture
    geometry): the multiplier choice never affects timing, so the GA's
    many multiplier variants hit the cache.
    """
    geometry = config.geometry_key()
    records = []
    for layer in network.layers:
        key = (network.name, layer.name, geometry, dram_gb_s)
        if use_cache and key in _LAYER_CACHE:
            records.append(_LAYER_CACHE[key])
            continue
        record = evaluate_layer(layer, config, dram_gb_s)
        if use_cache:
            _LAYER_CACHE[key] = record
        records.append(record)
    return NetworkPerformance(
        network_name=network.name,
        layer_performances=tuple(records),
        clock_hz=config.clock_hz,
        n_pes=config.n_pes,
    )


def clear_performance_cache() -> None:
    """Drop all cached layer latencies (used by tests)."""
    _LAYER_CACHE.clear()
