"""DNN layer shape algebra.

Three layer kinds cover the paper's workloads (VGG and ResNet families):

* :class:`ConvLayer` — 2-D convolution (square kernels, int8 tensors);
* :class:`FCLayer` — fully connected, treated as a 1x1 convolution on a
  1x1 feature map (that is exactly how NVDLA executes it);
* :class:`PoolLayer` — max/average pooling; contributes data movement
  but no MACs.

All byte counts assume int8 activations and weights, which is the
quantisation the approximate multipliers operate on.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Union

from repro.errors import WorkloadError


@dataclass(frozen=True)
class ConvLayer:
    """One convolution layer.

    Attributes:
        name: unique layer label within its network.
        in_channels: input channel count (C).
        out_channels: output channel / filter count (K).
        in_height: input feature-map height.
        in_width: input feature-map width.
        kernel: square kernel size (R = S).
        stride: convolution stride.
        padding: symmetric zero padding.
    """

    name: str
    in_channels: int
    out_channels: int
    in_height: int
    in_width: int
    kernel: int
    stride: int = 1
    padding: int = 0

    def __post_init__(self) -> None:
        for attr in ("in_channels", "out_channels", "in_height", "in_width", "kernel", "stride"):
            if getattr(self, attr) < 1:
                raise WorkloadError(
                    f"layer {self.name!r}: {attr} must be >= 1, got {getattr(self, attr)}"
                )
        if self.padding < 0:
            raise WorkloadError(f"layer {self.name!r}: padding cannot be negative")
        if self.out_height < 1 or self.out_width < 1:
            raise WorkloadError(
                f"layer {self.name!r}: kernel {self.kernel} stride {self.stride} "
                f"does not fit input {self.in_height}x{self.in_width}"
            )

    @property
    def out_height(self) -> int:
        return (self.in_height + 2 * self.padding - self.kernel) // self.stride + 1

    @property
    def out_width(self) -> int:
        return (self.in_width + 2 * self.padding - self.kernel) // self.stride + 1

    @property
    def out_pixels(self) -> int:
        """Output spatial positions (P)."""
        return self.out_height * self.out_width

    @property
    def macs_per_output(self) -> int:
        """MACs to produce one output element (C * R * S)."""
        return self.in_channels * self.kernel * self.kernel

    @property
    def macs(self) -> int:
        """Total multiply-accumulates in the layer."""
        return self.macs_per_output * self.out_channels * self.out_pixels

    @property
    def weight_bytes(self) -> int:
        return self.out_channels * self.in_channels * self.kernel * self.kernel

    @property
    def input_bytes(self) -> int:
        return self.in_channels * self.in_height * self.in_width

    @property
    def output_bytes(self) -> int:
        return self.out_channels * self.out_pixels


@dataclass(frozen=True)
class FCLayer:
    """Fully connected layer (matrix-vector for batch 1).

    Attributes:
        name: unique layer label.
        in_features: input vector length.
        out_features: output vector length.
    """

    name: str
    in_features: int
    out_features: int

    def __post_init__(self) -> None:
        if self.in_features < 1 or self.out_features < 1:
            raise WorkloadError(
                f"layer {self.name!r}: feature counts must be >= 1"
            )

    def as_conv(self) -> ConvLayer:
        """The equivalent 1x1 convolution on a 1x1 map."""
        return ConvLayer(
            name=self.name,
            in_channels=self.in_features,
            out_channels=self.out_features,
            in_height=1,
            in_width=1,
            kernel=1,
        )

    @property
    def macs(self) -> int:
        return self.in_features * self.out_features

    @property
    def weight_bytes(self) -> int:
        return self.in_features * self.out_features

    @property
    def input_bytes(self) -> int:
        return self.in_features

    @property
    def output_bytes(self) -> int:
        return self.out_features


@dataclass(frozen=True)
class PoolLayer:
    """Pooling layer: pure data movement for our purposes.

    Attributes:
        name: unique layer label.
        channels: channel count (unchanged by pooling).
        in_height: input height.
        in_width: input width.
        kernel: pooling window.
        stride: pooling stride (defaults to the window size).
        padding: symmetric zero padding.
    """

    name: str
    channels: int
    in_height: int
    in_width: int
    kernel: int
    stride: int = 0  # 0 means "same as kernel"
    padding: int = 0

    def __post_init__(self) -> None:
        if self.channels < 1 or self.kernel < 1:
            raise WorkloadError(f"layer {self.name!r}: bad pool geometry")
        if self.effective_stride < 1 or self.padding < 0:
            raise WorkloadError(f"layer {self.name!r}: bad pool stride/padding")
        if self.out_height < 1 or self.out_width < 1:
            raise WorkloadError(f"layer {self.name!r}: pool window exceeds input")

    @property
    def effective_stride(self) -> int:
        return self.stride if self.stride else self.kernel

    @property
    def out_height(self) -> int:
        return (
            self.in_height + 2 * self.padding - self.kernel
        ) // self.effective_stride + 1

    @property
    def out_width(self) -> int:
        return (
            self.in_width + 2 * self.padding - self.kernel
        ) // self.effective_stride + 1

    @property
    def macs(self) -> int:
        return 0

    @property
    def weight_bytes(self) -> int:
        return 0

    @property
    def input_bytes(self) -> int:
        return self.channels * self.in_height * self.in_width

    @property
    def output_bytes(self) -> int:
        return self.channels * self.out_height * self.out_width


Layer = Union[ConvLayer, FCLayer, PoolLayer]
