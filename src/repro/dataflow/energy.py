"""Per-inference energy accounting from the dataflow model.

Bridges the performance model (which knows MAC counts and traffic) to
the operational-carbon model (which prices joules): evaluating a
network on an architecture yields a fully-populated
:class:`~repro.carbon.operational.OperationalModel` without hand-fed
numbers.

The on-chip traffic estimate uses each layer's mapping: every pass
streams its weight and input tiles from the global buffer, so SRAM
traffic is the pass count times the pass working set — consistent with
the latency model's streaming term.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Tuple, Union

from repro.carbon.operational import OperationalModel
from repro.dataflow.network import Network
from repro.dataflow.performance import (
    DRAM_BANDWIDTH_GB_S,
    NetworkPerformance,
    evaluate_network,
)
from repro.nn.zoo import workload

if TYPE_CHECKING:  # pragma: no cover
    from repro.accel.arch import AcceleratorConfig


@dataclass(frozen=True)
class EnergyBreakdown:
    """Traffic and energy totals of one inference.

    Attributes:
        macs: multiply-accumulates executed.
        sram_bytes: global-buffer bytes streamed to the array.
        dram_bytes: external-memory traffic.
        performance: the underlying latency evaluation.
        model: ready-to-use operational energy model.
    """

    macs: float
    sram_bytes: float
    dram_bytes: float
    performance: NetworkPerformance
    model: OperationalModel

    @property
    def energy_per_inference_j(self) -> float:
        return self.model.energy_per_inference_j()


def _sram_traffic_bytes(performance: NetworkPerformance) -> float:
    """Global-buffer bytes streamed across all layers' passes."""
    total = 0.0
    for record in performance.layer_performances:
        mapping = record.mapping
        if record.macs == 0:
            continue
        crs = record.macs / max(mapping.k * mapping.p, 1)
        pass_bytes = mapping.ks * crs + mapping.ps * crs
        total += mapping.passes * pass_bytes
    return total


def network_energy(
    network: Union[str, Network],
    config: "AcceleratorConfig",
    static_power_w: float = 0.0,
    dram_gb_s: float = DRAM_BANDWIDTH_GB_S,
) -> EnergyBreakdown:
    """Per-inference energy of a network on an architecture.

    Args:
        network: workload name or object.
        config: accelerator configuration.
        static_power_w: leakage/clock power integrated over latency.
        dram_gb_s: external bandwidth used by the latency model.
    """
    net = workload(network) if isinstance(network, str) else network
    performance = evaluate_network(net, config, dram_gb_s)
    sram_bytes = _sram_traffic_bytes(performance)
    model = OperationalModel(
        node_nm=config.node_nm,
        macs_per_inference=float(performance.total_macs),
        sram_bytes_per_inference=sram_bytes,
        dram_bytes_per_inference=performance.total_dram_bytes,
        static_power_w=static_power_w,
        latency_s=performance.latency_s,
    )
    return EnergyBreakdown(
        macs=float(performance.total_macs),
        sram_bytes=sram_bytes,
        dram_bytes=performance.total_dram_bytes,
        performance=performance,
        model=model,
    )


def energy_per_mac_pj(breakdown: EnergyBreakdown) -> float:
    """Amortised energy per MAC in picojoules (efficiency headline)."""
    if breakdown.macs == 0:
        return 0.0
    return breakdown.energy_per_inference_j * 1e12 / breakdown.macs


def total_carbon_per_inference(
    breakdown: EnergyBreakdown,
    embodied_g: float,
    lifetime_inferences: float,
    grid_gco2_per_kwh: float = 475.0,
) -> Tuple[float, float]:
    """(embodied share, operational share) in gCO2 per inference.

    Args:
        breakdown: energy accounting of one inference.
        embodied_g: manufacturing carbon of the accelerator.
        lifetime_inferences: inferences over the device lifetime, used
            to amortise the embodied term.
        grid_gco2_per_kwh: deployment-site grid intensity.
    """
    from repro.carbon.operational import operational_carbon
    from repro.errors import CarbonModelError

    if lifetime_inferences <= 0:
        raise CarbonModelError("lifetime_inferences must be positive")
    embodied_share = embodied_g / lifetime_inferences
    operational_share = operational_carbon(
        breakdown.model, 1.0, grid_gco2_per_kwh
    )
    return embodied_share, operational_share
