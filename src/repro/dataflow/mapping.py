"""Tiling and loop-order selection for one layer on one architecture.

The dataflow is output-stationary on a ``pe_rows x pe_cols`` array:

* output channels (K) map across columns, output pixels (P) across rows;
* each *pass* computes a ``ks x ps`` tile of outputs to completion,
  accumulating over C*R*S terms inside the PEs;
* when the global buffer cannot hold a pass's weight working set, the
  reduction (C) is chunked and partial sums spill (``nc`` > 1);
* the temporal loop order is either ``k_outer`` (weights stream once,
  inputs may re-load) or ``p_outer`` (inputs stream once, weights may
  re-load) — :func:`best_mapping` evaluates both and keeps the faster.

This is the same modelling altitude as nn-dataflow: analytic loop-nest
cost, buffer-capacity-aware tiling, bandwidth-bound DRAM phases.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import TYPE_CHECKING, Tuple

from repro.dataflow.layers import ConvLayer, FCLayer, Layer, PoolLayer
from repro.errors import MappingError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type hints
    from repro.accel.arch import AcceleratorConfig

#: Fraction of the global buffer available to hold a resident tensor
#: (the rest double-buffers streaming tiles).
RESIDENT_BUDGET_FRACTION = 0.5

#: Fraction of the global buffer a single pass's weight tile may occupy.
PASS_WEIGHT_BUDGET_FRACTION = 0.25

#: Pipeline fill/drain overhead per pass chunk, in cycles, beyond the
#: array dimensions themselves.
PIPELINE_DEPTH = 4

#: Partial-sum word size in bytes (32-bit accumulators spill wide).
PSUM_BYTES = 4

LOOP_ORDERS: Tuple[str, str] = ("k_outer", "p_outer")


@dataclass(frozen=True)
class Mapping:
    """A concrete mapping of one conv-like layer onto the array.

    Attributes:
        layer_name: which layer this mapping executes.
        ks: output channels computed in parallel (columns used).
        ps: output pixels computed in parallel (rows used).
        rp: reduction parallelism — spare rows used to split the C*R*S
            accumulation (NVDLA's atomic-C behaviour); > 1 only when the
            layer has fewer output pixels than the array has rows (FC
            layers, tiny feature maps).
        nk: temporal iterations over output-channel tiles.
        np_: temporal iterations over output-pixel tiles.
        nc: reduction (input-channel) chunks; > 1 means psum spilling.
        loop_order: ``k_outer`` or ``p_outer``.
        dram_weight_bytes: weights fetched from DRAM (with re-loads).
        dram_input_bytes: input activations fetched from DRAM.
        dram_output_bytes: outputs written + partial-sum spill traffic.
    """

    layer_name: str
    k: int
    p: int
    ks: int
    ps: int
    rp: int
    nk: int
    np_: int
    nc: int
    loop_order: str
    dram_weight_bytes: float
    dram_input_bytes: float
    dram_output_bytes: float

    @property
    def passes(self) -> int:
        """Temporal output tiles executed."""
        return self.nk * self.np_

    @property
    def dram_total_bytes(self) -> float:
        return (
            self.dram_weight_bytes
            + self.dram_input_bytes
            + self.dram_output_bytes
        )

    @property
    def spatial_utilization(self) -> float:
        """Average fraction of PE output slots doing useful work.

        Accounts for ragged edges: the last k-tile / p-tile may not fill
        the array.
        """
        total_slots = self.ks * self.ps * self.passes
        return min(1.0, (self.k * self.p) / total_slots)


def _conv_view(layer: Layer) -> ConvLayer:
    if isinstance(layer, ConvLayer):
        return layer
    if isinstance(layer, FCLayer):
        return layer.as_conv()
    raise MappingError(
        f"layer {layer.name!r} of type {type(layer).__name__} does not map "
        "onto the MAC array"
    )


def _input_halo_reuse(conv: ConvLayer) -> float:
    """How many times each input byte is reused across output pixels."""
    reuse = (conv.kernel * conv.kernel) / (conv.stride * conv.stride)
    return max(reuse, 1.0)


def build_mapping(
    layer: Layer,
    config: "AcceleratorConfig",
    loop_order: str,
) -> Mapping:
    """Construct the mapping for one loop order (no search).

    Raises:
        MappingError: if the layer cannot legally execute on ``config``
            (e.g. the global buffer cannot hold even one weight chunk).
    """
    if loop_order not in LOOP_ORDERS:
        raise MappingError(f"unknown loop order {loop_order!r}")
    conv = _conv_view(layer)

    k = conv.out_channels
    p = conv.out_pixels
    crs = conv.macs_per_output

    ks = min(k, config.pe_cols)
    ps = min(p, config.pe_rows)
    nk = math.ceil(k / ks)
    np_ = math.ceil(p / ps)
    # spare rows split the reduction (NVDLA atomic-C): an FC layer with a
    # single output pixel still keeps the whole column of MACs busy
    rp = min(max(config.pe_rows // ps, 1), crs) if np_ == 1 else 1

    # reduction chunking: one pass's weight tile must fit its GB budget
    pass_weight_bytes = ks * crs
    weight_budget = PASS_WEIGHT_BUDGET_FRACTION * config.global_buffer_bytes
    nc = max(1, math.ceil(pass_weight_bytes / weight_budget))
    if nc > crs:
        raise MappingError(
            f"layer {conv.name!r}: global buffer of "
            f"{config.global_buffer_bytes} B cannot hold a single "
            f"reduction slice ({pass_weight_bytes} B pass weights)"
        )

    resident_budget = RESIDENT_BUDGET_FRACTION * config.global_buffer_bytes
    weights_fit = conv.weight_bytes <= resident_budget
    inputs_fit = conv.input_bytes <= resident_budget

    if loop_order == "k_outer":
        # weights stream exactly once; inputs re-read per k-tile unless
        # the feature map stays resident in the global buffer
        weight_traffic = float(conv.weight_bytes)
        input_traffic = float(conv.input_bytes) * (1 if inputs_fit else nk)
    else:
        # inputs stream exactly once; weights re-read per p-tile unless
        # the layer's weights stay resident
        input_traffic = float(conv.input_bytes)
        weight_traffic = float(conv.weight_bytes) * (1 if weights_fit else np_)

    spill_traffic = 2.0 * PSUM_BYTES * k * p * (nc - 1)
    output_traffic = float(conv.output_bytes) + spill_traffic

    return Mapping(
        layer_name=conv.name,
        k=k,
        p=p,
        ks=ks,
        ps=ps,
        rp=rp,
        nk=nk,
        np_=np_,
        nc=nc,
        loop_order=loop_order,
        dram_weight_bytes=weight_traffic,
        dram_input_bytes=input_traffic,
        dram_output_bytes=output_traffic,
    )


def best_mapping(layer: Layer, config: "AcceleratorConfig") -> Mapping:
    """The latency-optimal mapping over the loop-order space.

    Latency evaluation lives in :mod:`repro.dataflow.performance`; to
    avoid an import cycle the comparison is done there and re-exported —
    this function simply delegates.
    """
    from repro.dataflow.performance import select_best_mapping

    if isinstance(layer, PoolLayer):
        raise MappingError(
            f"pool layer {layer.name!r} does not occupy the MAC array"
        )
    return select_best_mapping(layer, config)
