"""Exception hierarchy for the :mod:`repro` library.

All exceptions raised intentionally by this library derive from
:class:`ReproError`, so callers can catch library failures without
swallowing unrelated bugs::

    try:
        design = designer.run()
    except ReproError as exc:
        ...  # configuration or modelling problem, not a programming bug
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by the repro library."""


class NetlistError(ReproError):
    """A netlist is structurally invalid (cycles, dangling wires, ...)."""


class SimulationError(ReproError):
    """A netlist simulation was asked to do something impossible."""


class SynthesisError(ReproError):
    """A circuit generator received inconsistent parameters."""


class CarbonModelError(ReproError):
    """The carbon model was configured with unphysical parameters."""


class ArchitectureError(ReproError):
    """An accelerator configuration is invalid or out of model range."""


class MappingError(ReproError):
    """No legal mapping exists for a layer on a given architecture."""


class WorkloadError(ReproError):
    """A DNN workload description is malformed."""


class AccuracyModelError(ReproError):
    """The accuracy predictor cannot evaluate the requested setup."""


class OptimizationError(ReproError):
    """A search (GA / NSGA-II) was configured inconsistently."""


class ConstraintError(ReproError):
    """A design constraint set is unsatisfiable or ill-formed."""


class ExperimentError(ReproError):
    """An experiment harness was invoked with invalid settings."""


class CheckpointError(ReproError):
    """A search checkpoint cannot be resumed (mismatched settings,
    incompatible version, or a store misconfiguration)."""
