"""Carbon Delay Product (CDP).

The paper's optimisation metric: the product of embodied carbon and
inference delay.

* Embodied carbon (gCO2) captures the sustainability cost of
  *manufacturing* the accelerator (Eq. 1).
* Delay (seconds per inference) captures how much performance the
  design actually delivers.

Minimising the product rewards designs that are simultaneously small
(low carbon) and fast enough — an accelerator twice as clean but three
times slower loses, which is exactly the overdesign/underdesign balance
the paper targets.  Units: gCO2 x seconds.
"""

from __future__ import annotations

from repro.errors import ConstraintError


def carbon_delay_product(carbon_g: float, delay_s: float) -> float:
    """CDP = embodied carbon x inference delay.

    Args:
        carbon_g: embodied carbon in gCO2 (Eq. 1 output).
        delay_s: single-inference latency in seconds (1 / FPS).

    Returns:
        CDP in gCO2-seconds.
    """
    if carbon_g < 0:
        raise ConstraintError(f"carbon cannot be negative: {carbon_g}")
    if delay_s <= 0:
        raise ConstraintError(f"delay must be positive: {delay_s}")
    return carbon_g * delay_s
