"""The paper's end-to-end methodology: GA-CDP design.

:class:`CarbonAwareDesigner` wires the two steps together:

1. build (or accept) the approximate-multiplier Pareto library;
2. run the genetic algorithm over architectures x multipliers with CDP
   fitness under FPS and accuracy constraints.

A designer instance is specific to one (network, node, thresholds)
setting — exactly one point of Fig. 2/Fig. 3.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Union

from repro.accuracy.predictor import AccuracyPredictor
from repro.approx.library import ApproxLibrary, build_library
from repro.core.baselines import design_point_for
from repro.core.results import DesignPoint
from repro.dataflow.network import Network
from repro.engine.checkpoint import (
    CheckpointStore,
    checkpoint_fingerprint,
    trajectory_parts,
)
from repro.engine.population import EngineConfig, PopulationEvaluator
from repro.errors import OptimizationError
from repro.ga.chromosome import space_for_library
from repro.ga.engine import (
    GA_TRAJECTORY_FIELDS,
    GaConfig,
    GaOutcome,
    GeneticAlgorithm,
)
from repro.ga.fitness import FitnessEvaluator
from repro.nn.zoo import workload


@dataclass(frozen=True)
class DesignerResult:
    """Outcome of one GA-CDP run.

    Attributes:
        best: the winning design, fully evaluated.
        outcome: raw GA trajectory (history, evaluation count).
    """

    best: DesignPoint
    outcome: GaOutcome

    @property
    def feasible(self) -> bool:
        return self.outcome.best.feasible


@dataclass
class CarbonAwareDesigner:
    """GA-CDP designer for one design problem.

    Attributes:
        network: workload name or object.
        node_nm: technology node (7/14/28).
        min_fps: performance threshold (paper: 30/40/50).
        max_drop_percent: accuracy-drop threshold (paper: 0.5/1/2).
        library: step-1 multiplier library (built with defaults when
            omitted).
        predictor: accuracy oracle (shared for cache reuse).
        ga_config: GA hyper-parameters.
        grid: fab grid profile for Eq. 2.
        fitness_mode: ``deadline_cdp`` (paper behaviour) or ``pure_cdp``
            (see :mod:`repro.ga.fitness`).
        engine: population-evaluation policy (see
            :mod:`repro.engine.population`).  The default ``auto``
            resolves to the vectorized batch path; every mode returns
            bit-identical designs to the serial reference.
        cache_dir: optional directory for the on-disk fitness cache, so
            repeated runs of the same design problem warm-start.
        checkpoint_dir: optional directory for per-generation GA
            checkpoints; a killed run keeps its finished generations.
        resume: pick a killed run back up from ``checkpoint_dir``
            (bit-identical to an uninterrupted run; a checkpoint
            written under different settings refuses with
            :class:`~repro.errors.CheckpointError`).
    """

    network: Union[str, Network]
    node_nm: int
    min_fps: float
    max_drop_percent: float
    library: Optional[ApproxLibrary] = None
    predictor: AccuracyPredictor = field(default_factory=AccuracyPredictor)
    ga_config: GaConfig = field(default_factory=GaConfig)
    grid: Union[str, float] = "taiwan"
    fitness_mode: str = "deadline_cdp"
    engine: Optional[EngineConfig] = None
    cache_dir: Optional[str] = None
    checkpoint_dir: Optional[str] = None
    resume: bool = False

    def _checkpoint_store(
        self, net: Network, library: ApproxLibrary
    ) -> Optional[CheckpointStore]:
        """One checkpoint slot per design problem.

        The name keys the slot to the problem (network, node,
        thresholds, grid, seed); the fingerprint additionally covers
        every setting the search trajectory depends on — GA
        hyper-parameters, fitness mode, and the library identity — so a
        resume under changed settings is refused rather than spliced.
        """
        if self.checkpoint_dir is None:
            return None
        cfg = self.ga_config
        name = (
            f"ga-cdp-{net.name}-n{self.node_nm}-fps{self.min_fps:g}"
            f"-drop{self.max_drop_percent:g}-{self.grid}-s{cfg.seed}"
        )
        fingerprint = checkpoint_fingerprint(
            "ga-cdp",
            net.name,
            self.node_nm,
            self.min_fps,
            self.max_drop_percent,
            str(self.grid),
            self.fitness_mode,
            trajectory_parts(cfg, GA_TRAJECTORY_FIELDS),
            tuple(m.name for m in library.multipliers),
        )
        return CheckpointStore(self.checkpoint_dir, name, fingerprint)

    def _baseline_seeds(self, library: ApproxLibrary, space) -> list:
        """NVDLA-family geometries as GA seeds.

        Seeding the population with the baseline family (exact and, if
        the tier allows, the smallest feasible approximate multiplier)
        guarantees the GA never returns a design worse than the
        baselines it is compared against, and speeds convergence —
        standard practice for DSE over a known family.
        """
        from repro.accel.nvdla import NVDLA_MAC_COUNTS, nvdla_buffer_bytes, nvdla_dimensions
        from repro.errors import AccuracyModelError

        def index_of(entry) -> int:
            # identity search: dataclass __eq__ would compare ndarrays
            for position, candidate in enumerate(library.multipliers):
                if candidate is entry:
                    return position
            raise OptimizationError(f"multiplier {entry.name!r} not in library")

        multiplier_indices = {index_of(library.exact)}
        try:
            feasible = self.predictor.smallest_feasible(
                self.network, library, self.max_drop_percent
            )
            multiplier_indices.add(index_of(feasible))
        except AccuracyModelError:
            pass

        seeds = []
        for macs in NVDLA_MAC_COUNTS:
            rows, cols = nvdla_dimensions(macs)
            local_bytes, global_bytes = nvdla_buffer_bytes(macs)
            for index in sorted(multiplier_indices):
                seeds.append(
                    space.encode_nearest(
                        rows, cols, local_bytes, global_bytes, index
                    )
                )
        return seeds

    def run(self) -> DesignerResult:
        """Execute step 2 (GA-CDP) and return the winning design.

        Raises:
            OptimizationError: if the GA cannot find any feasible design
                (thresholds unsatisfiable in the search space).
        """
        library = self.library if self.library is not None else build_library()
        net = (
            workload(self.network)
            if isinstance(self.network, str)
            else self.network
        )
        space = space_for_library(library)
        evaluator = FitnessEvaluator(
            network=net,
            library=library,
            space=space,
            node_nm=self.node_nm,
            min_fps=self.min_fps,
            max_drop_percent=self.max_drop_percent,
            predictor=self.predictor,
            grid=self.grid,
            fitness_mode=self.fitness_mode,
            cache_dir=self.cache_dir,
        )
        population_evaluate = PopulationEvaluator(
            evaluator.evaluate,
            batch_evaluate=evaluator.evaluate_population,
            config=self.engine or EngineConfig(),
            # process mode computes in children; backfill the parent's
            # memo/disk caches so flush_cache() still persists results
            store=evaluator.store,
        )
        store = self._checkpoint_store(net, library)
        ga = GeneticAlgorithm(
            space,
            evaluator.evaluate,
            self.ga_config,
            seeds=self._baseline_seeds(library, space),
            population_evaluate=population_evaluate,
            checkpoint=store,
            resume_from=store if self.resume else None,
        )
        outcome = ga.run()
        evaluator.flush_cache()

        if not outcome.best.feasible:
            raise OptimizationError(
                f"GA found no design meeting {self.min_fps} FPS and "
                f"{self.max_drop_percent}% drop on {net.name} at "
                f"{self.node_nm} nm (best violation: "
                f"{outcome.best.violation:.3f})"
            )

        config = space.decode(outcome.best.genome, library, self.node_nm)
        best = design_point_for(
            config, net, "ga_cdp", self.predictor, grid=self.grid
        )
        return DesignerResult(best=best, outcome=outcome)
