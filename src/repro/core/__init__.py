"""The paper's methodology, end to end.

* :mod:`repro.core.cdp` — the Carbon Delay Product metric;
* :mod:`repro.core.results` — design-point records shared by baselines,
  the GA flow and the experiment harnesses;
* :mod:`repro.core.baselines` — the exact NVDLA sweep and the
  approximate-only designs the paper compares against;
* :mod:`repro.core.designer` — :class:`CarbonAwareDesigner`, the
  two-step flow (approximate multiplier library + GA-CDP architecture
  search).
"""

from repro.core.cdp import carbon_delay_product
from repro.core.results import DesignPoint
from repro.core.baselines import (
    exact_sweep,
    approximate_only_sweep,
    smallest_exact_meeting_fps,
    design_point_for,
)
from repro.core.designer import CarbonAwareDesigner, DesignerResult

__all__ = [
    "carbon_delay_product",
    "DesignPoint",
    "exact_sweep",
    "approximate_only_sweep",
    "smallest_exact_meeting_fps",
    "design_point_for",
    "CarbonAwareDesigner",
    "DesignerResult",
]
