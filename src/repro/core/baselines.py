"""Baseline design flows the paper compares against.

* **Exact sweep** — the NVDLA-like family with exact multipliers
  (Fig. 2's ``Exact`` series).
* **Approximate-only sweep** — identical architectures, multiplier
  swapped for the smallest one meeting an accuracy budget (Fig. 2's
  ``Appx`` series; the paper stresses the architecture is *unchanged*).
* **Smallest exact meeting FPS** — the baseline designer without carbon
  awareness: pick the smallest family member that satisfies the
  performance threshold (Fig. 3's ``Exact`` bars).
"""

from __future__ import annotations

from typing import List, Sequence, Union

from repro.accel.arch import AcceleratorConfig
from repro.accel.nvdla import NVDLA_MAC_COUNTS, nvdla_family
from repro.accuracy.predictor import AccuracyPredictor
from repro.approx.library import ApproxLibrary
from repro.core.cdp import carbon_delay_product
from repro.core.results import DesignPoint
from repro.dataflow.network import Network
from repro.dataflow.performance import evaluate_network
from repro.errors import ConstraintError
from repro.nn.zoo import workload


def design_point_for(
    config: AcceleratorConfig,
    network: Union[str, Network],
    label: str,
    predictor: AccuracyPredictor,
    grid: Union[str, float] = "taiwan",
) -> DesignPoint:
    """Fully evaluate one architecture on one workload."""
    net = workload(network) if isinstance(network, str) else network
    performance = evaluate_network(net, config)
    carbon = config.embodied_carbon(grid=grid).total_g
    drop = predictor.drop_percent(net, config.multiplier)
    return DesignPoint(
        label=label,
        config=config,
        network_name=net.name,
        fps=performance.fps,
        carbon_g=carbon,
        cdp=carbon_delay_product(carbon, performance.latency_s),
        accuracy_drop_percent=drop,
    )


def exact_sweep(
    network: Union[str, Network],
    library: ApproxLibrary,
    node_nm: int,
    predictor: AccuracyPredictor,
    mac_counts: Sequence[int] = NVDLA_MAC_COUNTS,
    grid: Union[str, float] = "taiwan",
) -> List[DesignPoint]:
    """The exact-multiplier NVDLA family (Fig. 2 baseline curve)."""
    return [
        design_point_for(config, network, "exact", predictor, grid)
        for config in nvdla_family(
            library.exact, node_nm, mac_counts=tuple(mac_counts)
        )
    ]


def approximate_only_sweep(
    network: Union[str, Network],
    library: ApproxLibrary,
    node_nm: int,
    predictor: AccuracyPredictor,
    max_drop_percent: float,
    mac_counts: Sequence[int] = NVDLA_MAC_COUNTS,
    grid: Union[str, float] = "taiwan",
) -> List[DesignPoint]:
    """Same architectures, approximate multipliers only (Fig. 2 ``Appx``).

    The multiplier is the smallest library entry whose predicted drop on
    this network stays within ``max_drop_percent``.
    """
    net = workload(network) if isinstance(network, str) else network
    multiplier = predictor.smallest_feasible(net, library, max_drop_percent)
    label = f"appx_{max_drop_percent:g}"
    return [
        design_point_for(
            config.with_multiplier(multiplier), net, label, predictor, grid
        )
        for config in nvdla_family(
            library.exact, node_nm, mac_counts=tuple(mac_counts)
        )
    ]


def smallest_exact_meeting_fps(
    network: Union[str, Network],
    library: ApproxLibrary,
    node_nm: int,
    predictor: AccuracyPredictor,
    min_fps: float,
    mac_counts: Sequence[int] = NVDLA_MAC_COUNTS,
    grid: Union[str, float] = "taiwan",
) -> DesignPoint:
    """The non-carbon-aware designer's choice (Fig. 3 ``Exact`` bars).

    Raises:
        ConstraintError: if even the largest family member misses the
            FPS threshold.
    """
    sweep = exact_sweep(network, library, node_nm, predictor, mac_counts, grid)
    feasible = [point for point in sweep if point.fps >= min_fps]
    if not feasible:
        raise ConstraintError(
            f"no NVDLA family member reaches {min_fps} FPS on "
            f"{sweep[0].network_name} at {node_nm} nm "
            f"(best: {max(p.fps for p in sweep):.1f} FPS)"
        )
    return min(feasible, key=lambda point: point.config.n_pes)
