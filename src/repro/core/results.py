"""Design-point records shared across baselines, GA and experiments."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict

from repro.accel.arch import AcceleratorConfig


@dataclass(frozen=True)
class DesignPoint:
    """One fully-evaluated accelerator design.

    Attributes:
        label: series name (``exact``, ``appx_0.5`` ... ``ga_cdp``).
        config: the architecture.
        network_name: workload it was evaluated on.
        fps: inferences per second.
        carbon_g: embodied carbon (Eq. 1).
        cdp: carbon-delay product (gCO2-seconds).
        accuracy_drop_percent: predicted top-1 drop of its multiplier.
    """

    label: str
    config: AcceleratorConfig
    network_name: str
    fps: float
    carbon_g: float
    cdp: float
    accuracy_drop_percent: float

    def meets(self, min_fps: float, max_drop_percent: float) -> bool:
        """Constraint check used by the experiment harnesses."""
        return self.fps >= min_fps and self.accuracy_drop_percent <= max_drop_percent

    def as_row(self) -> Dict[str, Any]:
        """Flat dictionary for table rendering / serialisation."""
        return {
            "label": self.label,
            "network": self.network_name,
            "node_nm": self.config.node_nm,
            "pes": self.config.n_pes,
            "pe_rows": self.config.pe_rows,
            "pe_cols": self.config.pe_cols,
            "local_buffer_B": self.config.local_buffer_bytes,
            "global_buffer_KiB": self.config.global_buffer_bytes // 1024,
            "multiplier": self.config.multiplier.name,
            "fps": round(self.fps, 2),
            "carbon_g": round(self.carbon_g, 3),
            "cdp_gs": round(self.cdp, 5),
            "accuracy_drop_pct": round(self.accuracy_drop_percent, 3),
        }
