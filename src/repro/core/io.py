"""Result serialisation: design points and experiment outputs.

JSON for archival/comparison, CSV for spreadsheets — the formats a
user reproducing the paper actually wants on disk.  Deserialisation of
full configs is intentionally out of scope (a design point references
a multiplier netlist; results files are for *analysis*, not round-
tripping), but every quantitative field round-trips losslessly.
"""

from __future__ import annotations

import csv
import io
import json
from typing import Any, Dict, List, Mapping, Sequence

from repro.core.results import DesignPoint
from repro.errors import ExperimentError


def design_points_to_json(points: Sequence[DesignPoint], indent: int = 2) -> str:
    """Serialise design points to a JSON array string."""
    return json.dumps([point.as_row() for point in points], indent=indent)


def design_points_to_csv(points: Sequence[DesignPoint]) -> str:
    """Serialise design points to CSV text (header + one row each)."""
    if not points:
        raise ExperimentError("no design points to serialise")
    rows = [point.as_row() for point in points]
    buffer = io.StringIO()
    writer = csv.DictWriter(buffer, fieldnames=list(rows[0].keys()))
    writer.writeheader()
    writer.writerows(rows)
    return buffer.getvalue()


def load_design_rows(json_text: str) -> List[Dict[str, Any]]:
    """Parse a JSON results file back into plain row dictionaries."""
    data = json.loads(json_text)
    if not isinstance(data, list):
        raise ExperimentError("results JSON must be an array of rows")
    for row in data:
        if not isinstance(row, dict) or "label" not in row:
            raise ExperimentError(f"malformed results row: {row!r}")
    return data


def fig2_table_to_json(reductions: Mapping, network: str, indent: int = 2) -> str:
    """Serialise a Fig. 2 reduction table to JSON."""
    payload = {
        "network": network,
        "reductions": [
            {
                "node_nm": node,
                "drop_percent": tier,
                "avg_reduction_percent": avg,
                "peak_reduction_percent": peak,
            }
            for (node, tier), (avg, peak) in sorted(reductions.items())
        ],
    }
    return json.dumps(payload, indent=indent)


def fig3_cells_to_json(cells: Mapping, indent: int = 2) -> str:
    """Serialise Fig. 3 comparison cells to JSON."""
    payload = []
    for (network, node), cell in sorted(cells.items()):
        exact_n, approx_n, ga_n = cell.normalised
        payload.append(
            {
                "network": network,
                "node_nm": node,
                "exact_normalised": exact_n,
                "approx_only_normalised": approx_n,
                "ga_cdp_normalised": ga_n,
                "ga_saving_percent": cell.ga_savings_percent,
                "exact": cell.exact.as_row(),
                "approx_only": cell.approximate_only.as_row(),
                "ga_cdp": cell.ga_cdp.as_row(),
            }
        )
    return json.dumps(payload, indent=indent)
