"""Standard-cell area and delay models per technology node.

Synthesis tools report combinational area in NAND2-equivalents (gate
equivalents, GE); we do the same and convert to um^2 with a per-node
NAND2 footprint.  The numbers below are representative of published
standard-cell libraries (ASAP7-class 7 nm, 14/16 nm FinFET, 28 nm bulk
HKMG); the carbon results only depend on *relative* areas across nodes
and between exact/approximate variants, which these capture.

Delay is modelled as the longest path through the netlist, weighting
each gate by its ``delay_weight`` (NAND2 = 1.0) times the node's NAND2
fanout-4 delay.  This is deliberately first-order — the paper's flow
uses delay only to bound the accelerator clock per node.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.circuits.netlist import Netlist
from repro.errors import CarbonModelError


@dataclass(frozen=True)
class GateAreaModel:
    """Per-node standard-cell scaling factors.

    Attributes:
        node_nm: technology node in nanometres.
        nand2_area_um2: layout footprint of a NAND2x1 cell.
        gate_delay_ps: NAND2 fanout-4 delay in picoseconds.
        routing_overhead: multiplicative factor for wiring/placement
            inefficiency on top of raw cell area.
    """

    node_nm: int
    nand2_area_um2: float
    gate_delay_ps: float
    routing_overhead: float = 1.1

    def __post_init__(self) -> None:
        if self.nand2_area_um2 <= 0 or self.gate_delay_ps <= 0:
            raise CarbonModelError(
                f"non-physical gate model for {self.node_nm} nm: "
                f"area={self.nand2_area_um2}, delay={self.gate_delay_ps}"
            )


#: Representative models for the nodes the paper evaluates.  NAND2
#: footprints are derived from published chip-level logic densities
#: (~90 / 32 / 11 MTr/mm^2 at 7 / 14 / 28 nm), which already include
#: realistic routing/placement overhead — hence routing_overhead = 1.0.
GATE_AREA_MODELS: Dict[int, GateAreaModel] = {
    7: GateAreaModel(
        node_nm=7, nand2_area_um2=0.0444, gate_delay_ps=9.0, routing_overhead=1.0
    ),
    14: GateAreaModel(
        node_nm=14, nand2_area_um2=0.125, gate_delay_ps=13.0, routing_overhead=1.0
    ),
    28: GateAreaModel(
        node_nm=28, nand2_area_um2=0.364, gate_delay_ps=21.0, routing_overhead=1.0
    ),
}


def gate_area_model(node_nm: int) -> GateAreaModel:
    """Look up the area model for a supported node."""
    try:
        return GATE_AREA_MODELS[node_nm]
    except KeyError:
        raise CarbonModelError(
            f"unsupported technology node {node_nm} nm; "
            f"supported: {sorted(GATE_AREA_MODELS)}"
        ) from None


def netlist_ge(netlist: Netlist) -> float:
    """Netlist size in NAND2-equivalents."""
    return sum(g.spec.nand2_equivalents for g in netlist.gates.values())


def netlist_area_um2(netlist: Netlist, node_nm: int) -> float:
    """Placed-and-routed cell area of ``netlist`` at ``node_nm``."""
    model = gate_area_model(node_nm)
    return netlist_ge(netlist) * model.nand2_area_um2 * model.routing_overhead


def netlist_delay_ps(netlist: Netlist, node_nm: int) -> float:
    """Critical-path delay estimate in picoseconds.

    Longest weighted path over the gate DAG; primary inputs and
    constants have depth zero.
    """
    model = gate_area_model(node_nm)
    depth: Dict[str, float] = {}
    for wire in netlist.topological_order():
        gate = netlist.gates[wire]
        arrival = max((depth.get(w, 0.0) for w in gate.inputs), default=0.0)
        depth[wire] = arrival + gate.spec.delay_weight * model.gate_delay_ps
    if not depth:
        return 0.0
    return max(depth.get(w, 0.0) for w in netlist.outputs)
