"""Netlist rewrites used by gate-level pruning.

Gate-level pruning (Balaskas et al., TCAS-I 2022) approximates a circuit
by tying selected internal wires to constants.  The area win comes from
the clean-up that follows: constants propagate through downstream gates,
gates collapse to simpler ones or disappear, and cones of logic that no
longer reach an output are deleted.  This module implements exactly that
clean-up pipeline:

* :func:`propagate_constants` — one simplification pass (gate algebra);
* :func:`remove_dead_gates` — drop logic unreachable from the outputs;
* :func:`prune_wires` — tie wires to constants, then fully simplify;
* :func:`simplify` — propagate to fixpoint + dead-gate removal.

All functions are pure: they return new netlists and never mutate their
argument.  Output buses stay positionally aligned: ``result.outputs[i]``
always corresponds to ``original.outputs[i]``.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Tuple

from repro.circuits.gates import Gate, GateKind, gate_output_for_constants
from repro.circuits.netlist import Netlist
from repro.errors import NetlistError

# Result of simplifying one gate: exactly one of the fields is not None.
_Simplified = Tuple[Optional[int], Optional[str], Optional[Tuple[GateKind, Tuple[str, ...]]]]

_CONST = lambda v: (v, None, None)  # noqa: E731 - tiny local constructors
_ALIAS = lambda w: (None, w, None)  # noqa: E731
_GATE = lambda k, ins: (None, None, (k, ins))  # noqa: E731


def simplify_gate(
    kind: GateKind,
    ins: Tuple[str, ...],
    vals: Tuple[Optional[int], ...],
) -> _Simplified:
    """Apply local gate algebra given resolved inputs.

    ``vals[i]`` is the constant value of ``ins[i]`` if known, else None.
    Complement tracking (x AND NOT x) is deliberately out of scope: the
    pruning flow only ever introduces constants, which these rules fully
    absorb.

    Public because it *is* the gate-algebra contract: the
    population-batched sweep in :mod:`repro.circuits.batched` applies
    these exact rules vectorized across a population, and its property
    tests cross-check against this scalar form.  Returns a triple of
    which exactly one field is not None:
    ``(constant, alias_target, (kind, inputs))``.
    """
    if all(v is not None for v in vals):
        return _CONST(gate_output_for_constants(kind, tuple(vals)))  # type: ignore[arg-type]

    if kind == GateKind.NOT:
        return _GATE(kind, ins)
    if kind == GateKind.BUF:
        return _ALIAS(ins[0])

    if kind == GateKind.MUX:
        a, b, sel = ins
        va, vb, vsel = vals
        if vsel == 0:
            return _CONST(va) if va is not None else _ALIAS(a)
        if vsel == 1:
            return _CONST(vb) if vb is not None else _ALIAS(b)
        if a == b:
            return _CONST(va) if va is not None else _ALIAS(a)
        if va == 0 and vb == 1:
            return _ALIAS(sel)
        if va == 1 and vb == 0:
            return _GATE(GateKind.NOT, (sel,))
        if va == 0:
            return _GATE(GateKind.AND, (b, sel))  # sel ? b : 0
        if vb == 1:
            return _GATE(GateKind.OR, (a, sel))  # sel ? 1 : a
        # va == 1 or vb == 0 would need two gates; keep the MUX.
        return _GATE(kind, ins)

    # Two-input commutative gates: normalise so a constant (if any) is first.
    x, y = ins
    vx, vy = vals
    if vy is not None and vx is None:
        x, y, vx, vy = y, x, vy, vx

    if kind == GateKind.AND:
        if vx == 0:
            return _CONST(0)
        if vx == 1:
            return _ALIAS(y)
        if x == y:
            return _ALIAS(x)
    elif kind == GateKind.OR:
        if vx == 1:
            return _CONST(1)
        if vx == 0:
            return _ALIAS(y)
        if x == y:
            return _ALIAS(x)
    elif kind == GateKind.NAND:
        if vx == 0:
            return _CONST(1)
        if vx == 1:
            return _GATE(GateKind.NOT, (y,))
        if x == y:
            return _GATE(GateKind.NOT, (x,))
    elif kind == GateKind.NOR:
        if vx == 1:
            return _CONST(0)
        if vx == 0:
            return _GATE(GateKind.NOT, (y,))
        if x == y:
            return _GATE(GateKind.NOT, (x,))
    elif kind == GateKind.XOR:
        if vx == 0:
            return _ALIAS(y)
        if vx == 1:
            return _GATE(GateKind.NOT, (y,))
        if x == y:
            return _CONST(0)
    elif kind == GateKind.XNOR:
        if vx == 0:
            return _GATE(GateKind.NOT, (y,))
        if vx == 1:
            return _ALIAS(y)
        if x == y:
            return _CONST(1)
    return _GATE(kind, (x, y))


def propagate_constants(netlist: Netlist) -> Netlist:
    """One constant-propagation / gate-algebra pass.

    Returns a new netlist in which every gate whose inputs allow a local
    simplification has been rewritten.  Outputs are re-pointed through
    alias chains so positional correspondence is preserved.
    """
    values: Dict[str, int] = dict(netlist.constants)
    alias: Dict[str, str] = {}

    def resolve(wire: str) -> str:
        seen: List[str] = []
        while wire in alias:
            seen.append(wire)
            wire = alias[wire]
        for w in seen:  # path compression
            alias[w] = wire
        return wire

    new_gates: Dict[str, Gate] = {}
    for wire in netlist.topological_order():
        gate = netlist.gates[wire]
        ins = tuple(resolve(w) for w in gate.inputs)
        vals = tuple(values.get(w) for w in ins)
        const, target, rewritten = simplify_gate(gate.kind, ins, vals)
        if const is not None:
            values[wire] = const
        elif target is not None:
            alias[wire] = target
        else:
            assert rewritten is not None
            kind, new_ins = rewritten
            new_gates[wire] = Gate(kind, new_ins, wire)

    result = Netlist(
        name=netlist.name,
        inputs=list(netlist.inputs),
        outputs=[resolve(w) for w in netlist.outputs],
        gates=new_gates,
        constants=values,
    )
    return result


def remove_dead_gates(netlist: Netlist) -> Netlist:
    """Drop gates and constants that no output transitively reads."""
    needed: set[str] = set()
    stack = [w for w in netlist.outputs]
    while stack:
        wire = stack.pop()
        if wire in needed:
            continue
        needed.add(wire)
        gate = netlist.gates.get(wire)
        if gate is not None:
            stack.extend(gate.inputs)

    return Netlist(
        name=netlist.name,
        inputs=list(netlist.inputs),  # primary inputs always kept
        outputs=list(netlist.outputs),
        gates={w: g for w, g in netlist.gates.items() if w in needed},
        constants={w: v for w, v in netlist.constants.items() if w in needed},
    )


def simplify(netlist: Netlist, max_passes: int = 16) -> Netlist:
    """Propagate constants to fixpoint, then remove dead logic."""
    current = netlist
    for _ in range(max_passes):
        simplified = propagate_constants(current)
        if (
            simplified.gate_count == current.gate_count
            and simplified.gates == current.gates
            and simplified.outputs == current.outputs
        ):
            current = simplified
            break
        current = simplified
    return remove_dead_gates(current)


def prune_wires(netlist: Netlist, assignments: Mapping[str, int]) -> Netlist:
    """Gate-level pruning: tie internal wires to constants and simplify.

    Args:
        netlist: circuit to approximate (not modified).
        assignments: wire name -> 0/1.  Every wire must be driven by a
            gate (pruning a primary input would change the interface;
            pruning a constant is meaningless).

    Returns:
        The pruned and fully simplified netlist.

    Raises:
        NetlistError: if a wire is unknown or not a gate output.
    """
    pruned = netlist.copy(name=f"{netlist.name}_pruned")
    for wire, value in assignments.items():
        if wire not in pruned.gates:
            raise NetlistError(
                f"cannot prune '{wire}': not a gate output in {netlist.name}"
            )
        if value not in (0, 1):
            raise NetlistError(f"prune value for '{wire}' must be 0/1, got {value!r}")
        del pruned.gates[wire]
        pruned.constants[wire] = value
    return simplify(pruned)
