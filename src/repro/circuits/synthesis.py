"""Exact arithmetic circuit generators.

Produces gate-level netlists for the unsigned multipliers the paper's
step-1 flow approximates:

* ``array``   — row-by-row ripple accumulation (textbook array multiplier);
* ``wallace`` — aggressive column compression with 3:2 / 2:2 counters;
* ``dadda``   — Dadda's minimal-counter column reduction.

All generators return an :class:`ArithmeticCircuit`, which pairs the
netlist with the operand/result buses so later transforms never have to
guess wire names.  Bit 0 is the least-significant bit everywhere.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import List, Optional, Tuple

import numpy as np

from repro.circuits.gates import GateKind
from repro.circuits.netlist import Netlist, declare_input_bus
from repro.circuits.simulate import multiplier_truth_table
from repro.errors import SynthesisError

MULTIPLIER_KINDS = ("array", "wallace", "dadda")


@dataclass(frozen=True)
class ArithmeticCircuit:
    """A netlist plus its operand and result buses.

    Attributes:
        netlist: the gate-level implementation.
        a_wires: operand-A input wires, LSB first.
        b_wires: operand-B input wires, LSB first (empty for unary ops).
        result_wires: result wires, LSB first.
    """

    netlist: Netlist
    a_wires: Tuple[str, ...]
    b_wires: Tuple[str, ...]
    result_wires: Tuple[str, ...]

    @property
    def a_width(self) -> int:
        return len(self.a_wires)

    @property
    def b_width(self) -> int:
        return len(self.b_wires)

    @property
    def result_width(self) -> int:
        return len(self.result_wires)

    def truth_table(self) -> np.ndarray:
        """Exhaustive result table indexed by ``a + (b << a_width)``."""
        return multiplier_truth_table(
            self.netlist, self.a_wires, self.b_wires, self.result_wires
        )

    def with_netlist(self, netlist: Netlist) -> "ArithmeticCircuit":
        """Rebind to a transformed netlist, refreshing result wires.

        Transforms keep ``netlist.outputs`` positionally aligned with the
        original result bus, so the new result wires are simply the new
        output list.
        """
        return replace(
            self, netlist=netlist, result_wires=tuple(netlist.outputs)
        )


# --- adder/counter building blocks -----------------------------------------


def _half_adder(nl: Netlist, a: str, b: str) -> Tuple[str, str]:
    """Append a half adder; returns (sum, carry)."""
    s = nl.add_gate(GateKind.XOR, (a, b), nl.fresh_wire("has"))
    c = nl.add_gate(GateKind.AND, (a, b), nl.fresh_wire("hac"))
    return s, c


def _full_adder(nl: Netlist, a: str, b: str, cin: str) -> Tuple[str, str]:
    """Append a full adder; returns (sum, carry)."""
    t = nl.add_gate(GateKind.XOR, (a, b), nl.fresh_wire("fat"))
    s = nl.add_gate(GateKind.XOR, (t, cin), nl.fresh_wire("fas"))
    c1 = nl.add_gate(GateKind.AND, (a, b), nl.fresh_wire("fac1"))
    c2 = nl.add_gate(GateKind.AND, (t, cin), nl.fresh_wire("fac2"))
    c = nl.add_gate(GateKind.OR, (c1, c2), nl.fresh_wire("fac"))
    return s, c


def ripple_carry_adder(width: int, name: Optional[str] = None) -> ArithmeticCircuit:
    """Unsigned ripple-carry adder: ``width``-bit a + b -> (width+1)-bit sum."""
    if width < 1:
        raise SynthesisError(f"adder width must be >= 1, got {width}")
    nl = Netlist(name or f"rca{width}")
    a = declare_input_bus(nl, "a", width)
    b = declare_input_bus(nl, "b", width)
    sums: List[str] = []
    carry: Optional[str] = None
    for i in range(width):
        if carry is None:
            s, carry = _half_adder(nl, a[i], b[i])
        else:
            s, carry = _full_adder(nl, a[i], b[i], carry)
        sums.append(s)
    assert carry is not None
    sums.append(carry)
    for wire in sums:
        nl.add_output(wire)
    return ArithmeticCircuit(nl, tuple(a), tuple(b), tuple(sums))


# --- partial products --------------------------------------------------------


def _partial_products(
    nl: Netlist, a: List[str], b: List[str]
) -> List[List[str]]:
    """AND-gate partial products grouped by column (bit position)."""
    n, m = len(a), len(b)
    columns: List[List[str]] = [[] for _ in range(n + m)]
    for j in range(m):
        for i in range(n):
            pp = nl.add_gate(
                GateKind.AND, (a[i], b[j]), nl.fresh_wire(f"pp{j}_{i}_")
            )
            columns[i + j].append(pp)
    return columns


# --- array multiplier ---------------------------------------------------------


def array_multiplier(
    a_width: int, b_width: Optional[int] = None, name: Optional[str] = None
) -> ArithmeticCircuit:
    """Textbook array multiplier: one ripple-adder row per multiplier bit."""
    n = a_width
    m = b_width if b_width is not None else a_width
    _check_widths(n, m)
    nl = Netlist(name or f"mul{n}x{m}_array")
    a = declare_input_bus(nl, "a", n)
    b = declare_input_bus(nl, "b", m)

    rows = [
        [
            nl.add_gate(GateKind.AND, (a[i], b[j]), nl.fresh_wire(f"pp{j}_{i}_"))
            for i in range(n)
        ]
        for j in range(m)
    ]

    outputs: List[str] = []
    acc = rows[0]  # bits of positions 0 .. n-1
    outputs.append(acc[0])
    carry: Optional[str] = None
    for j in range(1, m):
        row = rows[j]  # positions j .. j+n-1
        addend = acc[1:] + ([carry] if carry is not None else [])
        new_acc: List[str] = []
        c: Optional[str] = None
        for i in range(n):
            x = row[i]
            y = addend[i] if i < len(addend) else None
            if y is None and c is None:
                new_acc.append(x)
            elif y is None:
                s, c = _half_adder(nl, x, c)  # type: ignore[arg-type]
                new_acc.append(s)
            elif c is None:
                s, c = _half_adder(nl, x, y)
                new_acc.append(s)
            else:
                s, c = _full_adder(nl, x, y, c)
                new_acc.append(s)
        acc = new_acc
        carry = c
        outputs.append(acc[0])

    outputs.extend(acc[1:])
    if carry is not None:
        outputs.append(carry)
    _pad_outputs(nl, outputs, n + m)
    for wire in outputs:
        nl.add_output(wire)
    return ArithmeticCircuit(nl, tuple(a), tuple(b), tuple(outputs))


# --- column-compression multipliers -------------------------------------------


def _wallace_reduce(
    nl: Netlist, columns: List[List[str]], cap: int
) -> List[List[str]]:
    """One Wallace stage: compress columns with FAs then HAs.

    Columns of height <= 2 pass through unchanged (compressing them
    would only shuffle bits upward), and the top column (``cap - 1``)
    is never compressed — its carry would exceed the result width and
    is provably zero for a non-overflowing multiplier.
    """
    new_columns: List[List[str]] = [[] for _ in range(cap)]
    for i, col in enumerate(columns):
        if len(col) <= 2 or i >= cap - 1:
            new_columns[i].extend(col)
            continue
        idx = 0
        while len(col) - idx >= 3:
            s, c = _full_adder(nl, col[idx], col[idx + 1], col[idx + 2])
            idx += 3
            new_columns[i].append(s)
            new_columns[i + 1].append(c)
        if len(col) - idx == 2:
            s, c = _half_adder(nl, col[idx], col[idx + 1])
            idx += 2
            new_columns[i].append(s)
            new_columns[i + 1].append(c)
        new_columns[i].extend(col[idx:])
    return new_columns


def _dadda_targets(max_height: int) -> List[int]:
    """Dadda height sequence 2, 3, 4, 6, 9, ... below ``max_height``."""
    targets = [2]
    while targets[-1] * 3 // 2 < max_height:
        targets.append(targets[-1] * 3 // 2)
    return targets


def _dadda_reduce_to(
    nl: Netlist, columns: List[List[str]], target: int, cap: int
) -> List[List[str]]:
    """Reduce every column to at most ``target`` wires (one Dadda stage).

    The top column (``cap - 1``) is exempt: compressing it would push a
    provably-zero carry past the result width.
    """
    cols = [list(col) for col in columns]
    while len(cols) < cap:
        cols.append([])
    for i in range(cap - 1):
        while len(cols[i]) > target:
            if len(cols[i]) == target + 1:
                s, c = _half_adder(nl, cols[i][0], cols[i][1])
                cols[i] = cols[i][2:] + [s]
            else:
                s, c = _full_adder(nl, cols[i][0], cols[i][1], cols[i][2])
                cols[i] = cols[i][3:] + [s]
            cols[i + 1].append(c)
    return cols


def _xor_fold(nl: Netlist, wires: List[str]) -> str:
    """XOR-reduce wires; correct for a top column whose carry is provably 0."""
    acc = wires[0]
    for wire in wires[1:]:
        acc = nl.add_gate(GateKind.XOR, (acc, wire), nl.fresh_wire("xf"))
    return acc


def _final_carry_propagate(
    nl: Netlist, columns: List[List[str]], cap: int
) -> List[str]:
    """Ripple-add the final <=2-high columns into a flat result bus.

    The top column (``cap - 1``) is XOR-folded: any carry out of it
    would overflow the result, so for a correct multiplier that carry is
    identically zero and the bit equals the parity of the column.
    """
    result: List[str] = []
    carry: Optional[str] = None
    for i, col in enumerate(columns):
        wires = list(col)
        if carry is not None:
            wires.append(carry)
            carry = None
        if len(wires) == 0:
            zero = nl.fresh_wire("zero")
            nl.tie_constant(zero, 0)
            result.append(zero)
        elif len(wires) == 1:
            result.append(wires[0])
        elif i >= cap - 1:
            result.append(_xor_fold(nl, wires))
        elif len(wires) == 2:
            s, carry = _half_adder(nl, wires[0], wires[1])
            result.append(s)
        elif len(wires) == 3:
            s, carry = _full_adder(nl, wires[0], wires[1], wires[2])
            result.append(s)
        else:  # pragma: no cover - reduction guarantees <=2 + carry
            raise SynthesisError(f"column of height {len(wires)} after reduction")
    if carry is not None:
        result.append(carry)
    return result


def wallace_multiplier(
    a_width: int, b_width: Optional[int] = None, name: Optional[str] = None
) -> ArithmeticCircuit:
    """Wallace-tree multiplier (aggressive column compression)."""
    n = a_width
    m = b_width if b_width is not None else a_width
    _check_widths(n, m)
    nl = Netlist(name or f"mul{n}x{m}_wallace")
    a = declare_input_bus(nl, "a", n)
    b = declare_input_bus(nl, "b", m)
    columns = _partial_products(nl, a, b)
    while max(len(col) for col in columns[: n + m - 1]) > 2:
        columns = _wallace_reduce(nl, columns, cap=n + m)
    outputs = _final_carry_propagate(nl, columns, cap=n + m)
    _pad_outputs(nl, outputs, n + m)
    for wire in outputs:
        nl.add_output(wire)
    return ArithmeticCircuit(nl, tuple(a), tuple(b), tuple(outputs))


def dadda_multiplier(
    a_width: int, b_width: Optional[int] = None, name: Optional[str] = None
) -> ArithmeticCircuit:
    """Dadda multiplier (minimal counters per stage)."""
    n = a_width
    m = b_width if b_width is not None else a_width
    _check_widths(n, m)
    nl = Netlist(name or f"mul{n}x{m}_dadda")
    a = declare_input_bus(nl, "a", n)
    b = declare_input_bus(nl, "b", m)
    columns = _partial_products(nl, a, b)
    max_height = max(len(col) for col in columns)
    for target in reversed(_dadda_targets(max_height)):
        columns = _dadda_reduce_to(nl, columns, target, cap=n + m)
    outputs = _final_carry_propagate(nl, columns, cap=n + m)
    _pad_outputs(nl, outputs, n + m)
    for wire in outputs:
        nl.add_output(wire)
    return ArithmeticCircuit(nl, tuple(a), tuple(b), tuple(outputs))


def make_multiplier(
    a_width: int,
    b_width: Optional[int] = None,
    kind: str = "wallace",
    name: Optional[str] = None,
) -> ArithmeticCircuit:
    """Dispatch to a multiplier generator by ``kind``."""
    if kind == "array":
        return array_multiplier(a_width, b_width, name)
    if kind == "wallace":
        return wallace_multiplier(a_width, b_width, name)
    if kind == "dadda":
        return dadda_multiplier(a_width, b_width, name)
    raise SynthesisError(
        f"unknown multiplier kind {kind!r}; expected one of {MULTIPLIER_KINDS}"
    )


# --- public column-arithmetic helpers -----------------------------------------


def partial_product_columns(
    nl: Netlist, a: List[str], b: List[str]
) -> List[List[str]]:
    """AND-gate partial products grouped by bit position (public)."""
    return _partial_products(nl, a, b)


def compress_columns(
    nl: Netlist, columns: List[List[str]], cap: int
) -> List[List[str]]:
    """Wallace-compress columns until every height is <= 2.

    Public building block for custom (e.g. approximate) multiplier
    structures: takes per-position wire lists, returns the compressed
    columns; the top column (``cap - 1``) is never compressed.
    """
    current = [list(col) for col in columns]
    while len(current) < cap:
        current.append([])
    while max((len(col) for col in current[: cap - 1]), default=0) > 2:
        current = _wallace_reduce(nl, current, cap)
    return current


def carry_propagate(
    nl: Netlist, columns: List[List[str]], cap: int
) -> List[str]:
    """Final carry-propagate stage over <=2-high columns (public)."""
    return _final_carry_propagate(nl, columns, cap)


def half_adder(nl: Netlist, a: str, b: str) -> Tuple[str, str]:
    """Append a half adder to ``nl``; returns (sum, carry)."""
    return _half_adder(nl, a, b)


def full_adder(nl: Netlist, a: str, b: str, cin: str) -> Tuple[str, str]:
    """Append a full adder to ``nl``; returns (sum, carry)."""
    return _full_adder(nl, a, b, cin)


# --- helpers ------------------------------------------------------------------


def _check_widths(n: int, m: int) -> None:
    if n < 1 or m < 1:
        raise SynthesisError(f"multiplier widths must be >= 1, got {n}x{m}")
    if n + m > 26:
        raise SynthesisError(
            f"{n}x{m} multiplier would need exhaustive tables of 2^{n + m} "
            "entries; refusing (>2^26)"
        )


def _pad_outputs(nl: Netlist, outputs: List[str], width: int) -> None:
    """Pad a result bus to ``width`` bits with constant-0 wires."""
    while len(outputs) < width:
        zero = nl.fresh_wire("zero")
        nl.tie_constant(zero, 0)
        outputs.append(zero)
    if len(outputs) > width:
        raise SynthesisError(
            f"result bus has {len(outputs)} bits, expected at most {width}"
        )
