"""Netlist verification helpers.

Exhaustive equivalence checking is feasible for everything this library
synthesises (at most 16 input bits for an 8x8 multiplier), so formal
methods are unnecessary: we simply compare truth tables.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.circuits.netlist import Netlist
from repro.circuits.simulate import bus_to_uint, exhaustive_table
from repro.errors import NetlistError


def validate_netlist(netlist: Netlist) -> None:
    """Raise :class:`NetlistError` on any structural problem.

    Checks: outputs driven, no combinational cycles, every gate input
    known (input, constant, or gate output), and no wire driven twice
    (guaranteed by construction but re-checked for transformed netlists).
    """
    netlist.check_outputs_driven()
    netlist.topological_order()  # raises on cycles / undriven gate inputs

    driven = set(netlist.inputs) | set(netlist.constants) | set(netlist.gates)
    for out_wire, gate in netlist.gates.items():
        if gate.output != out_wire:
            raise NetlistError(
                f"gate keyed as '{out_wire}' claims to drive '{gate.output}'"
            )
        for in_wire in gate.inputs:
            if in_wire not in driven:
                raise NetlistError(
                    f"gate '{out_wire}' reads unknown wire '{in_wire}'"
                )
    overlap = set(netlist.inputs) & set(netlist.constants)
    if overlap:
        raise NetlistError(f"wires both input and constant: {sorted(overlap)}")


def equivalent(
    left: Netlist,
    right: Netlist,
    input_buses: Sequence[Sequence[str]],
) -> bool:
    """Exhaustive functional equivalence over shared input buses.

    Both netlists must expose the same primary inputs; outputs are
    compared positionally as unsigned integers, so netlists with
    differently-named (but positionally aligned) output buses compare
    equal when they compute the same function.
    """
    if len(left.outputs) != len(right.outputs):
        return False
    left_table = exhaustive_table(left, input_buses)
    right_table = exhaustive_table(right, input_buses)
    left_value = bus_to_uint(left_table, left.outputs)
    right_value = bus_to_uint(right_table, right.outputs)
    return bool(np.array_equal(left_value, right_value))
