"""Combinational netlist intermediate representation.

A :class:`Netlist` is a named DAG of gates:

* **inputs** — ordered primary input wires;
* **outputs** — ordered primary output wires;
* **gates** — one gate per driven wire (single-driver invariant);
* **constants** — wires tied to logic 0/1 (produced by pruning).

Wires are plain strings.  An output wire may also be an alias of an
input or constant (common after simplification), which is modelled with
a BUF gate so the single-driver invariant always holds for non-input,
non-constant wires.

The IR is deliberately minimal: enough to synthesise exact multipliers,
apply gate-level pruning rewrites, and measure area — the three things
the paper's step-1 flow needs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Sequence, Set, Tuple

from repro.circuits.gates import Gate, GateKind
from repro.errors import NetlistError


@dataclass
class Netlist:
    """A combinational netlist.

    Attributes:
        name: human-readable identifier (e.g. ``"mul8x8_wallace"``).
        inputs: ordered primary-input wire names.
        outputs: ordered primary-output wire names.
        gates: mapping from driven wire name to the driving :class:`Gate`.
        constants: wires tied off to 0 or 1.
    """

    name: str
    inputs: List[str] = field(default_factory=list)
    outputs: List[str] = field(default_factory=list)
    gates: Dict[str, Gate] = field(default_factory=dict)
    constants: Dict[str, int] = field(default_factory=dict)

    # --- construction helpers ---------------------------------------------

    def add_input(self, wire: str) -> str:
        """Declare a primary input wire and return its name."""
        if wire in self.inputs:
            raise NetlistError(f"duplicate input wire '{wire}'")
        if wire in self.gates or wire in self.constants:
            raise NetlistError(f"wire '{wire}' is already driven")
        self.inputs.append(wire)
        return wire

    def add_output(self, wire: str) -> str:
        """Declare a primary output wire and return its name."""
        self.outputs.append(wire)
        return wire

    def add_gate(self, kind: GateKind, inputs: Sequence[str], output: str) -> str:
        """Add a gate driving ``output``; returns the output wire name."""
        if output in self.gates:
            raise NetlistError(f"wire '{output}' already driven by a gate")
        if output in self.inputs:
            raise NetlistError(f"wire '{output}' is a primary input")
        if output in self.constants:
            raise NetlistError(f"wire '{output}' is a constant")
        self.gates[output] = Gate(kind, tuple(inputs), output)
        return output

    def tie_constant(self, wire: str, value: int) -> str:
        """Tie ``wire`` to constant ``value`` (0 or 1)."""
        if value not in (0, 1):
            raise NetlistError(f"constant must be 0 or 1, got {value!r}")
        if wire in self.gates:
            raise NetlistError(f"wire '{wire}' already driven by a gate")
        if wire in self.inputs:
            raise NetlistError(f"wire '{wire}' is a primary input")
        self.constants[wire] = value
        return wire

    def fresh_wire(self, prefix: str = "w") -> str:
        """Return a wire name not yet used anywhere in the netlist."""
        index = len(self.gates) + len(self.constants)
        wire = f"{prefix}{index}"
        while self.is_known(wire):
            index += 1
            wire = f"{prefix}{index}"
        return wire

    # --- queries ------------------------------------------------------------

    def is_known(self, wire: str) -> bool:
        """True if ``wire`` is an input, constant, or gate output."""
        return wire in self.gates or wire in self.constants or wire in self.inputs

    def driver_of(self, wire: str) -> Gate | None:
        """The gate driving ``wire``, or ``None`` for inputs/constants."""
        return self.gates.get(wire)

    def all_wires(self) -> Set[str]:
        """Every wire name referenced by the netlist."""
        wires: Set[str] = set(self.inputs) | set(self.constants) | set(self.gates)
        for gate in self.gates.values():
            wires.update(gate.inputs)
        wires.update(self.outputs)
        return wires

    def fanout(self) -> Dict[str, List[str]]:
        """Map each wire to the list of gate-output wires it feeds."""
        result: Dict[str, List[str]] = {}
        for out_wire, gate in self.gates.items():
            for in_wire in gate.inputs:
                result.setdefault(in_wire, []).append(out_wire)
        return result

    @property
    def gate_count(self) -> int:
        """Number of gate instances (constants and inputs excluded)."""
        return len(self.gates)

    def transistor_count(self) -> int:
        """Total static-CMOS transistor count over all gates."""
        return sum(gate.spec.transistors for gate in self.gates.values())

    def kind_histogram(self) -> Dict[GateKind, int]:
        """Count of gate instances per :class:`GateKind`."""
        histogram: Dict[GateKind, int] = {}
        for gate in self.gates.values():
            histogram[gate.kind] = histogram.get(gate.kind, 0) + 1
        return histogram

    # --- ordering -------------------------------------------------------------

    def topological_order(self) -> List[str]:
        """Gate-output wires in dependency order.

        Raises:
            NetlistError: if the netlist contains a combinational cycle or
                a gate reads a wire that nothing drives.
        """
        order: List[str] = []
        state: Dict[str, int] = {}  # 0 = unvisited, 1 = on stack, 2 = done
        sources = set(self.inputs) | set(self.constants)

        for root in self.gates:
            if state.get(root, 0) == 2:
                continue
            stack: List[Tuple[str, int]] = [(root, 0)]
            while stack:
                wire, pin = stack[-1]
                if pin == 0:
                    if state.get(wire, 0) == 1:
                        raise NetlistError(
                            f"combinational cycle through wire '{wire}'"
                        )
                    state[wire] = 1
                gate = self.gates[wire]
                advanced = False
                for next_pin in range(pin, len(gate.inputs)):
                    dep = gate.inputs[next_pin]
                    if dep in sources:
                        continue
                    if dep not in self.gates:
                        raise NetlistError(
                            f"gate '{wire}' reads undriven wire '{dep}'"
                        )
                    if state.get(dep, 0) == 2:
                        continue
                    if state.get(dep, 0) == 1:
                        raise NetlistError(
                            f"combinational cycle through wire '{dep}'"
                        )
                    stack[-1] = (wire, next_pin + 1)
                    stack.append((dep, 0))
                    advanced = True
                    break
                if advanced:
                    continue
                state[wire] = 2
                order.append(wire)
                stack.pop()
        return order

    # --- housekeeping ----------------------------------------------------------

    def check_outputs_driven(self) -> None:
        """Raise if any declared output has no driver."""
        for wire in self.outputs:
            if not self.is_known(wire):
                raise NetlistError(f"output wire '{wire}' is undriven")

    def copy(self, name: str | None = None) -> "Netlist":
        """Deep-enough copy (gates are immutable; containers are fresh)."""
        return Netlist(
            name=name or self.name,
            inputs=list(self.inputs),
            outputs=list(self.outputs),
            gates=dict(self.gates),
            constants=dict(self.constants),
        )

    def stats(self) -> Mapping[str, float]:
        """Summary statistics used in reports and tests."""
        return {
            "gates": self.gate_count,
            "transistors": self.transistor_count(),
            "inputs": len(self.inputs),
            "outputs": len(self.outputs),
            "constants": len(self.constants),
        }

    def __repr__(self) -> str:  # pragma: no cover - debug convenience
        return (
            f"Netlist({self.name!r}, {len(self.inputs)} in, "
            f"{len(self.outputs)} out, {self.gate_count} gates)"
        )


def bus(prefix: str, width: int) -> List[str]:
    """Wire names for a ``width``-bit bus: ``prefix0 .. prefix{width-1}``.

    Bit 0 is the least-significant bit throughout the library.
    """
    if width <= 0:
        raise NetlistError(f"bus width must be positive, got {width}")
    return [f"{prefix}{i}" for i in range(width)]


def declare_input_bus(netlist: Netlist, prefix: str, width: int) -> List[str]:
    """Declare ``width`` input wires named ``prefix0..``; returns them."""
    wires = bus(prefix, width)
    for wire in wires:
        netlist.add_input(wire)
    return wires


def declare_output_bus(netlist: Netlist, prefix: str, width: int) -> List[str]:
    """Declare ``width`` output wires named ``prefix0..``; returns them."""
    wires = bus(prefix, width)
    for wire in wires:
        netlist.add_output(wire)
    return wires


def iter_gates_in_order(netlist: Netlist) -> Iterable[Gate]:
    """Yield gates in topological order (inputs before consumers)."""
    for wire in netlist.topological_order():
        yield netlist.gates[wire]
