"""Vectorised netlist simulation.

Two representations are supported transparently:

* **boolean arrays** — one ``bool`` per test case per wire; simple,
  used for small directed tests;
* **packed uint64 words** — 64 test cases per machine word, so an
  exhaustive 8x8-multiplier evaluation (65536 cases) touches only 1024
  words per wire.  All gate functions are plain bitwise numpy ops, so
  the same compiled program serves both representations.

The packed path is what makes exhaustive error metrics (and therefore
NSGA-II over thousands of pruned multipliers) cheap enough to run inside
a genetic loop.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Sequence, Tuple

import numpy as np

from repro.circuits.gates import GATE_LIBRARY
from repro.circuits.netlist import Netlist
from repro.errors import SimulationError

_ALL_ONES = np.uint64(0xFFFFFFFFFFFFFFFF)

# Repeating masks for exhaustive input bits 0..5 inside one 64-case word.
_WORD_MASKS = (
    0xAAAAAAAAAAAAAAAA,
    0xCCCCCCCCCCCCCCCC,
    0xF0F0F0F0F0F0F0F0,
    0xFF00FF00FF00FF00,
    0xFFFF0000FFFF0000,
    0xFFFFFFFF00000000,
)


class CompiledNetlist:
    """A netlist lowered to a linear program over wire slots.

    Compiling once and running many times matters because the pruning
    search evaluates each candidate netlist on the full input space.
    """

    def __init__(self, netlist: Netlist):
        netlist.check_outputs_driven()
        order = netlist.topological_order()

        self._slot_of: Dict[str, int] = {}
        for wire in netlist.inputs:
            self._slot_of[wire] = len(self._slot_of)
        for wire in netlist.constants:
            self._slot_of[wire] = len(self._slot_of)
        for wire in order:
            if wire not in self._slot_of:
                self._slot_of[wire] = len(self._slot_of)

        self.netlist = netlist
        self.n_slots = len(self._slot_of)
        self._program: List[Tuple[object, int, Tuple[int, ...]]] = []
        for wire in order:
            gate = netlist.gates[wire]
            evaluate = GATE_LIBRARY[gate.kind].evaluate
            in_slots = tuple(self._slot_of[w] for w in gate.inputs)
            self._program.append((evaluate, self._slot_of[wire], in_slots))

        self._const_slots = [
            (self._slot_of[wire], value) for wire, value in netlist.constants.items()
        ]
        self._input_slots = [(wire, self._slot_of[wire]) for wire in netlist.inputs]
        self._output_slots = [(wire, self._slot_of[wire]) for wire in netlist.outputs]

    # -----------------------------------------------------------------

    def _execute(self, inputs: Mapping[str, np.ndarray]) -> List[np.ndarray]:
        """Fill and return the wire-slot storage for one evaluation."""
        storage: List[np.ndarray | None] = [None] * self.n_slots

        template: np.ndarray | None = None
        for wire, slot in self._input_slots:
            if wire not in inputs:
                raise SimulationError(f"missing value for input wire '{wire}'")
            array = np.asarray(inputs[wire])
            if template is None:
                template = array
            elif array.shape != template.shape or array.dtype != template.dtype:
                raise SimulationError(
                    f"input '{wire}' has shape/dtype {array.shape}/{array.dtype}, "
                    f"expected {template.shape}/{template.dtype}"
                )
            storage[slot] = array

        if template is None:
            raise SimulationError("netlist has no inputs; nothing to simulate")

        zero, one = _constants_like(template)
        for slot, value in self._const_slots:
            storage[slot] = one if value else zero

        for evaluate, out_slot, in_slots in self._program:
            operands = tuple(storage[s] for s in in_slots)  # type: ignore[misc]
            storage[out_slot] = evaluate(operands)  # type: ignore[arg-type]
        return storage  # type: ignore[return-value]

    def run(self, inputs: Mapping[str, np.ndarray]) -> Dict[str, np.ndarray]:
        """Evaluate the netlist on per-wire input arrays.

        Args:
            inputs: wire name -> array of values.  Boolean arrays mean one
                case per element; uint64 arrays mean 64 packed cases per
                element.  All arrays must share shape and dtype.

        Returns:
            Mapping from each primary-output wire to its value array.
        """
        storage = self._execute(inputs)
        results: Dict[str, np.ndarray] = {}
        for wire, slot in self._output_slots:
            value = storage[slot]
            if value is None:
                raise SimulationError(f"output wire '{wire}' was never computed")
            results[wire] = value
        return results

    def run_all(self, inputs: Mapping[str, np.ndarray]) -> Dict[str, np.ndarray]:
        """Like :meth:`run` but returns the value of *every* wire.

        Used by the pruning heuristics, which need internal signal
        probabilities, not just primary outputs.
        """
        storage = self._execute(inputs)
        return {wire: storage[slot] for wire, slot in self._slot_of.items()}

    # --- introspection hooks (population-batched execution) ------------

    @property
    def program(self) -> Tuple[Tuple[object, int, Tuple[int, ...]], ...]:
        """The lowered program: ``(evaluate, out_slot, in_slots)`` steps.

        :mod:`repro.circuits.batched` replays this program with a
        population axis added to every wire slab; exposing it (rather
        than re-deriving a topological order) guarantees the batched
        engine executes the exact gate sequence the reference does.
        """
        return tuple(self._program)

    def slot_of(self, wire: str) -> int:
        """Storage slot of a wire (inputs, constants, and gate outputs)."""
        return self._slot_of[wire]

    @property
    def input_slots(self) -> Tuple[Tuple[str, int], ...]:
        """(wire, slot) for every primary input, in declaration order."""
        return tuple(self._input_slots)

    @property
    def output_slots(self) -> Tuple[Tuple[str, int], ...]:
        """(wire, slot) for every primary output, in declaration order."""
        return tuple(self._output_slots)

    @property
    def const_slots(self) -> Tuple[Tuple[int, int], ...]:
        """(slot, value) for every netlist constant."""
        return tuple(self._const_slots)


def _constants_like(template: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """Return (all-zero, all-one) arrays matching the template encoding."""
    if template.dtype == np.uint64:
        return (
            np.zeros(template.shape, dtype=np.uint64),
            np.full(template.shape, _ALL_ONES, dtype=np.uint64),
        )
    if template.dtype == bool:
        return (
            np.zeros(template.shape, dtype=bool),
            np.ones(template.shape, dtype=bool),
        )
    raise SimulationError(
        f"unsupported simulation dtype {template.dtype}; use bool or uint64"
    )


def simulate(
    netlist: Netlist, inputs: Mapping[str, np.ndarray]
) -> Dict[str, np.ndarray]:
    """One-shot convenience wrapper: compile then run."""
    return CompiledNetlist(netlist).run(inputs)


# --- exhaustive input generation ------------------------------------------


def packed_input_patterns(n_bits: int) -> Tuple[List[np.ndarray], int, int]:
    """Packed exhaustive patterns for ``n_bits`` of input.

    Case ``c`` (0 <= c < 2**n_bits) assigns input bit ``i`` the value
    ``(c >> i) & 1``.  Bit ``c % 64`` of word ``c // 64`` holds case ``c``.

    Returns:
        (patterns, n_cases, n_words) where ``patterns[i]`` is the uint64
        word array for input bit ``i``.
    """
    if n_bits <= 0:
        raise SimulationError(f"need at least one input bit, got {n_bits}")
    if n_bits > 26:
        raise SimulationError(
            f"{n_bits} input bits means {1 << n_bits} cases; refusing (>26 bits)"
        )
    n_cases = 1 << n_bits
    n_words = max(1, n_cases // 64)
    patterns: List[np.ndarray] = []
    for i in range(n_bits):
        if i < 6:
            patterns.append(
                np.full(n_words, np.uint64(_WORD_MASKS[i]), dtype=np.uint64)
            )
        else:
            word_index = np.arange(n_words, dtype=np.uint64)
            bit = (word_index >> np.uint64(i - 6)) & np.uint64(1)
            patterns.append(np.where(bit == 1, _ALL_ONES, np.uint64(0)))
    return patterns, n_cases, n_words


def unpack_cases(packed: np.ndarray, n_cases: int) -> np.ndarray:
    """Expand a packed uint64 wire value into one bool per case."""
    as_bytes = packed.astype("<u8").view(np.uint8)
    bits = np.unpackbits(as_bytes, bitorder="little")
    return bits[:n_cases].astype(bool)


#: Per-byte set-bit counts, the popcount fallback for numpy < 2.0
#: (which lacks ``np.bitwise_count``).
_BYTE_POPCOUNT = np.unpackbits(
    np.arange(256, dtype=np.uint8)[:, None], axis=1
).sum(axis=1, dtype=np.int64)


def popcount_cases(packed: np.ndarray, n_cases: int) -> int:
    """Number of 1-cases in a packed wire value, without unpacking.

    Counting bits directly on the uint64 words replaces the
    64x-larger bool expansion :func:`unpack_cases` would materialise;
    :func:`signal_probabilities` rides on it so the pruning-space
    setup stays packed end to end.
    """
    flat = np.ascontiguousarray(packed, dtype=np.uint64).reshape(-1)
    if n_cases % 64:
        # fewer cases than one word holds: mask the exhaustive input
        # patterns' repeating garbage above bit ``n_cases``
        flat = flat.copy()
        flat[n_cases // 64] &= np.uint64((1 << (n_cases % 64)) - 1)
        flat[n_cases // 64 + 1 :] = 0
    if hasattr(np, "bitwise_count"):
        return int(np.bitwise_count(flat).sum())
    return int(_BYTE_POPCOUNT[flat.view(np.uint8)].sum())


def exhaustive_table(
    netlist: Netlist, input_buses: Sequence[Sequence[str]]
) -> Dict[str, np.ndarray]:
    """Evaluate every input combination; return output bits per case.

    Args:
        netlist: circuit to evaluate.
        input_buses: buses in significance order; the concatenation
            (first bus = least-significant bits of the case index) must
            cover every primary input exactly once.

    Returns:
        output wire -> bool array of length ``2**total_input_bits``,
        where case ``c`` encodes bus values as described in
        :func:`packed_input_patterns`.
    """
    flat: List[str] = [wire for bus_wires in input_buses for wire in bus_wires]
    if sorted(flat) != sorted(netlist.inputs):
        raise SimulationError(
            "input_buses must cover every primary input exactly once; "
            f"got {flat} vs netlist inputs {netlist.inputs}"
        )
    patterns, n_cases, _ = packed_input_patterns(len(flat))
    inputs = {wire: patterns[i] for i, wire in enumerate(flat)}
    packed_outputs = CompiledNetlist(netlist).run(inputs)
    return {
        wire: unpack_cases(value, n_cases) for wire, value in packed_outputs.items()
    }


def bus_to_uint(
    values: Mapping[str, np.ndarray], bus_wires: Sequence[str]
) -> np.ndarray:
    """Combine per-bit bool arrays into unsigned integers (bit 0 = LSB)."""
    if not bus_wires:
        raise SimulationError("empty bus")
    total = np.zeros(values[bus_wires[0]].shape, dtype=np.uint64)
    for i, wire in enumerate(bus_wires):
        total |= values[wire].astype(np.uint64) << np.uint64(i)
    return total


def signal_probabilities(
    netlist: Netlist, input_buses: Sequence[Sequence[str]]
) -> Dict[str, float]:
    """Probability of each wire being 1 under uniform exhaustive inputs.

    The gate-level pruning heuristic uses these to decide which constant
    to tie a wire to (the more likely value) and how costly the tie is
    (the probability of the less likely value).

    Probabilities come from popcounts over the packed words — the
    exact integer one-counts divided by ``n_cases`` — so no per-wire
    bool expansion is ever materialised.
    """
    flat: List[str] = [wire for bus_wires in input_buses for wire in bus_wires]
    if sorted(flat) != sorted(netlist.inputs):
        raise SimulationError(
            "input_buses must cover every primary input exactly once"
        )
    patterns, n_cases, _ = packed_input_patterns(len(flat))
    inputs = {wire: patterns[i] for i, wire in enumerate(flat)}
    all_wires = CompiledNetlist(netlist).run_all(inputs)
    return {
        wire: popcount_cases(packed, n_cases) / n_cases
        for wire, packed in all_wires.items()
    }


def multiplier_truth_table(
    netlist: Netlist,
    a_wires: Sequence[str],
    b_wires: Sequence[str],
    product_wires: Sequence[str],
) -> np.ndarray:
    """Exhaustive product table of a (possibly approximate) multiplier.

    Returns:
        uint64 array ``table`` of length ``2**(len(a)+len(b))`` with
        ``table[a + (b << len(a))]`` = circuit output for operands a, b.
    """
    outputs = exhaustive_table(netlist, [a_wires, b_wires])
    return bus_to_uint(outputs, product_wires)
