"""Fast adder families: carry-lookahead, Kogge-Stone, carry-select.

The ripple-carry adder in :mod:`repro.circuits.synthesis` is the area
floor; these families trade area for logarithmic or block-parallel
carry depth.  They matter to the carbon study in two ways: the PE
accumulator's adder choice shifts the area/clock trade-off, and the
approximate-adder extension (:mod:`repro.approx.adders`) needs exact
baselines to approximate.

All generators return :class:`ArithmeticCircuit` with a
``width + 1``-bit sum (carry-out included) and are exhaustively
verified by the test suite.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.circuits.gates import GateKind
from repro.circuits.netlist import Netlist, declare_input_bus
from repro.circuits.synthesis import ArithmeticCircuit, full_adder, half_adder
from repro.errors import SynthesisError


def _propagate_generate(
    nl: Netlist, a: List[str], b: List[str]
) -> Tuple[List[str], List[str]]:
    """Bitwise propagate (XOR) and generate (AND) signals."""
    p = [
        nl.add_gate(GateKind.XOR, (a[i], b[i]), nl.fresh_wire(f"p{i}_"))
        for i in range(len(a))
    ]
    g = [
        nl.add_gate(GateKind.AND, (a[i], b[i]), nl.fresh_wire(f"g{i}_"))
        for i in range(len(a))
    ]
    return p, g


def _and_chain(nl: Netlist, wires: List[str], tag: str) -> str:
    """AND-fold a non-empty wire list."""
    acc = wires[0]
    for index, wire in enumerate(wires[1:], start=1):
        acc = nl.add_gate(
            GateKind.AND, (acc, wire), nl.fresh_wire(f"{tag}a{index}_")
        )
    return acc


def _or_chain(nl: Netlist, wires: List[str], tag: str) -> str:
    """OR-fold a non-empty wire list."""
    acc = wires[0]
    for index, wire in enumerate(wires[1:], start=1):
        acc = nl.add_gate(
            GateKind.OR, (acc, wire), nl.fresh_wire(f"{tag}o{index}_")
        )
    return acc


def carry_lookahead_adder(
    width: int, block: int = 4, name: Optional[str] = None
) -> ArithmeticCircuit:
    """Block carry-lookahead adder (74x283-style groups).

    Within each ``block``-bit group every carry is a two-level AND-OR
    over the group's p/g terms and its carry-in:

    ``c_{i+1} = g_i | p_i g_{i-1} | ... | (p_i ... p_start) c_in``

    Groups chain through their carry-out, so depth is
    O(width / block) group hops instead of O(width) bit hops.

    Args:
        width: operand width.
        block: lookahead group size (>= 1).
    """
    if width < 1:
        raise SynthesisError(f"adder width must be >= 1, got {width}")
    if block < 1:
        raise SynthesisError(f"lookahead block must be >= 1, got {block}")
    nl = Netlist(name or f"cla{width}b{block}")
    a = declare_input_bus(nl, "a", width)
    b = declare_input_bus(nl, "b", width)
    p, g = _propagate_generate(nl, a, b)

    sums: List[str] = []
    group_cin: Optional[str] = None  # carry into the current group
    for start in range(0, width, block):
        end = min(start + block, width)
        carry_in: Optional[str] = group_cin  # carry into bit `start`
        for i in range(start, end):
            if carry_in is None:
                sums.append(p[i])
            else:
                sums.append(
                    nl.add_gate(
                        GateKind.XOR, (p[i], carry_in), nl.fresh_wire(f"s{i}_")
                    )
                )
            # lookahead carry into bit i+1, flat AND-OR from the group base
            tag = f"la{i}_"
            terms: List[str] = []
            for j in range(start, i + 1):
                # term: g_j & p_{j+1} & ... & p_i
                factors = [g[j]] + p[j + 1 : i + 1]
                terms.append(
                    _and_chain(nl, factors, f"{tag}g{j}_")
                    if len(factors) > 1
                    else factors[0]
                )
            if group_cin is not None:
                factors = p[start : i + 1] + [group_cin]
                terms.append(_and_chain(nl, factors, f"{tag}c_"))
            carry_in = _or_chain(nl, terms, tag) if len(terms) > 1 else terms[0]
        group_cin = carry_in
    assert group_cin is not None
    sums.append(group_cin)
    for wire in sums:
        nl.add_output(wire)
    return ArithmeticCircuit(nl, tuple(a), tuple(b), tuple(sums))


def kogge_stone_adder(width: int, name: Optional[str] = None) -> ArithmeticCircuit:
    """Kogge-Stone parallel-prefix adder (log-depth carries)."""
    if width < 1:
        raise SynthesisError(f"adder width must be >= 1, got {width}")
    nl = Netlist(name or f"ks{width}")
    a = declare_input_bus(nl, "a", width)
    b = declare_input_bus(nl, "b", width)
    p, g = _propagate_generate(nl, a, b)

    # prefix tree over (g, p): after the tree, g_i = carry out of bit i
    level_g = list(g)
    level_p = list(p)
    distance = 1
    while distance < width:
        next_g = list(level_g)
        next_p = list(level_p)
        for i in range(distance, width):
            through = nl.add_gate(
                GateKind.AND,
                (level_p[i], level_g[i - distance]),
                nl.fresh_wire(f"kg{distance}_{i}_"),
            )
            next_g[i] = nl.add_gate(
                GateKind.OR, (level_g[i], through), nl.fresh_wire(f"gg{distance}_{i}_")
            )
            next_p[i] = nl.add_gate(
                GateKind.AND,
                (level_p[i], level_p[i - distance]),
                nl.fresh_wire(f"pp{distance}_{i}_"),
            )
        level_g, level_p = next_g, next_p
        distance *= 2

    sums: List[str] = [p[0]]
    for i in range(1, width):
        sums.append(
            nl.add_gate(
                GateKind.XOR, (p[i], level_g[i - 1]), nl.fresh_wire(f"s{i}_")
            )
        )
    sums.append(level_g[width - 1])
    for wire in sums:
        nl.add_output(wire)
    return ArithmeticCircuit(nl, tuple(a), tuple(b), tuple(sums))


def _ripple_block(
    nl: Netlist,
    a: List[str],
    b: List[str],
    cin: Optional[str],
) -> Tuple[List[str], str]:
    """Ripple-add a block; cin None means 0. Returns (sums, carry)."""
    sums: List[str] = []
    carry = cin
    for i in range(len(a)):
        if carry is None:
            s, carry = half_adder(nl, a[i], b[i])
        else:
            s, carry = full_adder(nl, a[i], b[i], carry)
        sums.append(s)
    assert carry is not None
    return sums, carry


def _constant_one(nl: Netlist) -> str:
    one = nl.fresh_wire("kone")
    nl.tie_constant(one, 1)
    return one


def carry_select_adder(
    width: int, block: int = 4, name: Optional[str] = None
) -> ArithmeticCircuit:
    """Carry-select adder: each block computed for cin=0/1, muxed.

    Args:
        width: operand width.
        block: block size; the first block is plain ripple.
    """
    if width < 1:
        raise SynthesisError(f"adder width must be >= 1, got {width}")
    if block < 1:
        raise SynthesisError(f"select block must be >= 1, got {block}")
    nl = Netlist(name or f"csel{width}b{block}")
    a = declare_input_bus(nl, "a", width)
    b = declare_input_bus(nl, "b", width)

    sums: List[str] = []
    first_end = min(block, width)
    block_sums, carry = _ripple_block(nl, a[:first_end], b[:first_end], None)
    sums.extend(block_sums)

    start = first_end
    while start < width:
        end = min(start + block, width)
        a_blk, b_blk = a[start:end], b[start:end]
        zero_sums, zero_carry = _ripple_block(nl, a_blk, b_blk, None)
        one_sums, one_carry = _ripple_block(
            nl, a_blk, b_blk, _constant_one(nl)
        )
        for i, (s0, s1) in enumerate(zip(zero_sums, one_sums)):
            sums.append(
                nl.add_gate(
                    GateKind.MUX, (s0, s1, carry), nl.fresh_wire(f"ms{start + i}_")
                )
            )
        carry = nl.add_gate(
            GateKind.MUX, (zero_carry, one_carry, carry), nl.fresh_wire(f"mc{end}_")
        )
        start = end

    sums.append(carry)
    for wire in sums:
        nl.add_output(wire)
    return ArithmeticCircuit(nl, tuple(a), tuple(b), tuple(sums))


ADDER_KINDS = ("ripple", "cla", "kogge_stone", "carry_select")


def make_adder(
    width: int, kind: str = "ripple", name: Optional[str] = None
) -> ArithmeticCircuit:
    """Dispatch to an adder generator by ``kind``."""
    if kind == "ripple":
        from repro.circuits.synthesis import ripple_carry_adder

        return ripple_carry_adder(width, name)
    if kind == "cla":
        return carry_lookahead_adder(width, name=name)
    if kind == "kogge_stone":
        return kogge_stone_adder(width, name=name)
    if kind == "carry_select":
        return carry_select_adder(width, name=name)
    raise SynthesisError(
        f"unknown adder kind {kind!r}; expected one of {ADDER_KINDS}"
    )
