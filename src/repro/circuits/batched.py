"""Population-batched evaluation of pruning genomes on one netlist.

The step-1 pruning search scores thousands of genomes, and every genome
is the *same* base circuit with a few wires tied to constants.  The
per-genome reference path pays, for each genome,

* ``prune_wires`` — a Python constant-propagation fixpoint plus
  dead-gate removal (:mod:`repro.circuits.transform`),
* a netlist re-compile (:class:`repro.circuits.simulate.CompiledNetlist`),
* an exhaustive packed simulation of the pruned netlist.

:class:`BatchedCircuitEvaluator` compiles the **base** circuit once and
evaluates a whole NSGA-II generation in one pass:

* **Simulation** replays the compiled program with a population axis:
  every wire slab has shape ``(P, n_words)`` uint64 (64 packed cases
  per word, one row per genome).  Immediately after a prunable wire's
  gate executes, the rows of genomes that tie it are overwritten with
  the constant's packed pattern, so downstream gates consume exactly
  the tied value ``prune_wires`` would feed them.  Gate-level pruning
  followed by simplification is function-preserving, so the resulting
  truth tables are bit-identical to simulating each pruned netlist.
* **Area** comes from a vectorized constant-propagation + backward-
  liveness sweep over the same compiled program.  Per wire and per
  genome the sweep tracks the known constant value, the alias
  representative, and the (possibly rewritten) gate kind, applying the
  exact gate algebra of :func:`repro.circuits.transform.simplify_gate`
  as masked numpy operations across the population.  Passes repeat to
  the same fixpoint (and the same 16-pass cap) as
  :func:`repro.circuits.transform.simplify`; a final reverse sweep
  marks the gates reachable from the outputs.  Because every cell size
  is a multiple of 0.25 gate equivalents, the per-genome sums are
  exact in float64 and therefore equal
  :func:`repro.circuits.area.netlist_ge` of the materialised pruned
  netlist bit for bit.

The per-genome ``prune_wires`` + ``simulate`` path stays in-tree as the
bit-exact reference; ``tests/circuits/test_batched.py`` pins both
outputs of this engine against it over random genomes.
"""

from __future__ import annotations

import sys
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.circuits.area import netlist_ge
from repro.circuits.gates import GATE_LIBRARY, GateKind
from repro.circuits.simulate import CompiledNetlist, packed_input_patterns
from repro.circuits.synthesis import ArithmeticCircuit
from repro.engine import kernels as _kernels
from repro.errors import NetlistError, SimulationError

_ALL_ONES = np.uint64(0xFFFFFFFFFFFFFFFF)

#: Fixed gate-kind codes used by the vectorized sweep.
_KINDS: Tuple[GateKind, ...] = tuple(GateKind)
_CODE: Dict[GateKind, int] = {kind: i for i, kind in enumerate(_KINDS)}
_ARITY = np.array([GATE_LIBRARY[k].n_inputs for k in _KINDS], dtype=np.int8)
_GE = np.array(
    [GATE_LIBRARY[k].nand2_equivalents for k in _KINDS], dtype=np.float64
)
_K_NOT = _CODE[GateKind.NOT]
_K_BUF = _CODE[GateKind.BUF]
_K_AND = _CODE[GateKind.AND]
_K_OR = _CODE[GateKind.OR]
_K_NAND = _CODE[GateKind.NAND]
_K_NOR = _CODE[GateKind.NOR]
_K_XOR = _CODE[GateKind.XOR]
_K_XNOR = _CODE[GateKind.XNOR]
_K_MUX = _CODE[GateKind.MUX]


class BatchedCircuitEvaluator:
    """Evaluate populations of pruning genomes against one base circuit.

    Args:
        circuit: the base :class:`ArithmeticCircuit` being pruned.
        candidates: ordered ``(wire, constant)`` pairs; a genome is a
            0/1 mask over this sequence selecting which wires to tie.
            Every wire must be a gate output of the base netlist.

    Determinism contract: for any genome, :meth:`truth_tables` equals
    the truth table of ``prune_wires(netlist, assignments)`` and
    :meth:`area_ge` equals its :func:`~repro.circuits.area.netlist_ge`,
    bit for bit.  The only intentional divergence is the empty genome,
    for which callers that mirror ``PruningSpace.apply`` (which returns
    the *unsimplified* base circuit) should use the base circuit's own
    area; :attr:`base_area_ge` carries it.
    """

    def __init__(
        self,
        circuit: ArithmeticCircuit,
        candidates: Sequence[Tuple[str, int]],
        kernel_tier: Optional[str] = None,
    ):
        _kernels.validate_kernel_tier(kernel_tier)
        #: Kernel-tier request (None = ambient default / ``auto``);
        #: resolved per call so late tier loads and test-forced
        #: degradation both behave.
        self.kernel_tier = kernel_tier
        self._slab_plan_cache: Optional[_kernels.SlabPlan] = None
        self._sweep_plan_cache: Optional[_kernels.SweepPlan] = None
        self.circuit = circuit
        netlist = circuit.netlist
        self.compiled = CompiledNetlist(netlist)
        self.n_slots = self.compiled.n_slots

        flat_inputs = list(circuit.a_wires) + list(circuit.b_wires)
        if sorted(flat_inputs) != sorted(netlist.inputs):
            raise SimulationError(
                "operand buses must cover every primary input exactly once"
            )
        patterns, self.n_cases, self.n_words = packed_input_patterns(
            len(flat_inputs)
        )
        self._input_patterns: List[Tuple[int, np.ndarray]] = [
            (self.compiled.slot_of(wire), patterns[i])
            for i, wire in enumerate(flat_inputs)
        ]

        self.candidates: Tuple[Tuple[str, int], ...] = tuple(
            (str(wire), int(value)) for wire, value in candidates
        )
        for wire, value in self.candidates:
            if wire not in netlist.gates:
                raise NetlistError(
                    f"cannot prune '{wire}': not a gate output in "
                    f"{netlist.name}"
                )
            if value not in (0, 1):
                raise NetlistError(
                    f"prune value for '{wire}' must be 0/1, got {value!r}"
                )
        self._cand_slots = np.array(
            [self.compiled.slot_of(w) for w, _ in self.candidates],
            dtype=np.int32,
        )
        self._cand_consts = np.array(
            [v for _, v in self.candidates], dtype=np.int8
        )

        program = self.compiled.program
        self._program = program
        self.n_gates = len(program)

        # ties to apply right after each program step produces its slab
        ties_by_slot: Dict[int, List[Tuple[int, int]]] = {}
        for index, (slot, const) in enumerate(
            zip(self._cand_slots, self._cand_consts)
        ):
            ties_by_slot.setdefault(int(slot), []).append(
                (index, int(const))
            )
        self._step_ties: List[Tuple[Tuple[int, int], ...]] = [
            tuple(ties_by_slot.get(out_slot, ()))
            for _evaluate, out_slot, _in_slots in program
        ]

        # slab-freeing plan: drop each gate slab after its last reader
        # (outputs and inputs are never freed; input slabs are
        # broadcast views and cost nothing)
        keep = {slot for _, slot in self.compiled.output_slots}
        keep.update(self.compiled.slot_of(w) for w in circuit.result_wires)
        keep.update(slot for slot, _ in self._input_patterns)
        keep.update(slot for slot, _ in self.compiled.const_slots)
        last_use = {}
        for step, (_evaluate, out_slot, in_slots) in enumerate(program):
            last_use[out_slot] = step
            for slot in in_slots:
                last_use[slot] = step
        free_after: List[List[int]] = [[] for _ in program]
        for slot, step in last_use.items():
            if slot not in keep:
                free_after[step].append(slot)
        self._free_after = [tuple(slots) for slots in free_after]

        # --- static tables for the area sweep --------------------------
        self._gate_out = np.array(
            [out_slot for _evaluate, out_slot, _ins in program],
            dtype=np.int32,
        )
        kinds = []
        ins0 = np.zeros((self.n_gates, 3), dtype=np.int32)
        dup = np.zeros(self.n_gates, dtype=bool)
        order = [netlist.gates[w] for w in netlist.topological_order()]
        gate_of_slot = {
            self.compiled.slot_of(g.output): g for g in order
        }
        for g, (_evaluate, out_slot, in_slots) in enumerate(program):
            gate = gate_of_slot[out_slot]
            kinds.append(_CODE[gate.kind])
            for k, slot in enumerate(in_slots):
                ins0[g, k] = slot
            dup[g] = len(set(in_slots)) != len(in_slots)
        self._kind0 = np.array(kinds, dtype=np.int8)
        self._ins0 = ins0
        self._dup0 = dup

        val0 = np.full(self.n_slots, -1, dtype=np.int8)
        for slot, value in self.compiled.const_slots:
            val0[slot] = value
        self._val0 = val0
        is_gate0 = np.zeros(self.n_slots, dtype=bool)
        is_gate0[self._gate_out] = True
        self._is_gate0 = is_gate0
        self._netlist_out_slots = np.array(
            [slot for _, slot in self.compiled.output_slots], dtype=np.int32
        )

        # static consumer adjacency (slot -> gate indices reading it)
        # and the always-dirty seed gates: BUF aliases unconditionally,
        # duplicate-input gates trigger the x == y algebra, and gates
        # reading a base constant fold in pass 1 even with no ties
        consumers0: List[List[int]] = [[] for _ in range(self.n_slots)]
        for g in range(self.n_gates):
            for k in range(int(_ARITY[self._kind0[g]])):
                consumers0[int(ins0[g, k])].append(g)
        self._consumers0 = [tuple(c) for c in consumers0]
        seed_dirty = np.zeros(self.n_gates, dtype=bool)
        seed_dirty |= self._kind0 == _K_BUF
        seed_dirty |= dup
        for slot, _value in self.compiled.const_slots:
            for g in consumers0[slot]:
                seed_dirty[g] = True
        self._seed_dirty = seed_dirty

        #: Area of the unsimplified base circuit (the empty-genome case).
        self.base_area_ge: float = netlist_ge(netlist)

        if len(circuit.result_wires) > 64:
            raise SimulationError(
                f"result bus has {len(circuit.result_wires)} wires; "
                "uint64 tables support at most 64"
            )
        #: Narrowest unsigned dtype the result bus fits (what
        #: :meth:`evaluate` tables carry, empty populations included).
        n_bytes = -(-len(circuit.result_wires) // 8)
        self.table_dtype = {
            1: np.uint8, 2: np.uint16, 3: np.uint32, 4: np.uint32,
        }.get(n_bytes, np.uint64)

    # ------------------------------------------------------------------

    def genome_matrix(self, genomes: Sequence[Sequence[int]]) -> np.ndarray:
        """Validate genomes and stack them into a (P, n_candidates) mask."""
        n = len(self.candidates)
        for genome in genomes:
            if len(genome) != n:
                raise SimulationError(
                    f"genome length {len(genome)} != {n} candidates"
                )
        if not genomes:
            return np.zeros((0, n), dtype=bool)
        return np.asarray(genomes, dtype=bool).reshape(len(genomes), n)

    def truth_tables(self, genomes: Sequence[Sequence[int]]) -> np.ndarray:
        """Per-genome exhaustive result tables, shape ``(P, n_cases)``.

        Row ``i`` is bit-identical (as uint64, the reference dtype) to
        ``space.apply(genomes[i]).truth_table()``.
        """
        ties = self.genome_matrix(genomes)
        if not len(ties):
            return np.zeros((0, self.n_cases), dtype=np.uint64)
        impl = _kernels.get_kernel(self.kernel_tier)
        if impl.simulate_tables is not None:
            return impl.simulate_tables(self._slab_plan(), ties)
        return self._tables(self._simulate(ties), len(ties)).astype(
            np.uint64
        )

    def area_ge(self, genomes: Sequence[Sequence[int]]) -> np.ndarray:
        """Per-genome pruned-and-simplified area in gate equivalents.

        Row ``i`` equals ``netlist_ge(prune_wires(netlist,
        assignments_i))`` exactly (see the class docstring for the
        empty-genome caveat).
        """
        ties = self.genome_matrix(genomes)
        if not len(ties):
            return np.zeros(0, dtype=np.float64)
        impl = _kernels.get_kernel(self.kernel_tier)
        if impl.sweep_ge is not None:
            return impl.sweep_ge(self._sweep_plan(), ties)
        return self._sweep_ge(ties)

    def evaluate(
        self, genomes: Sequence[Sequence[int]]
    ) -> Tuple[np.ndarray, np.ndarray]:
        """One-call fast path: ``(tables, area_ge)`` per genome.

        Tables carry the same values as :meth:`truth_tables` in the
        narrowest unsigned dtype that fits the result bus (uint16 for
        an 8x8 multiplier) — widen with ``astype(np.uint64)`` when the
        reference dtype matters.
        """
        ties = self.genome_matrix(genomes)
        if not len(ties):
            return (
                np.zeros((0, self.n_cases), dtype=self.table_dtype),
                np.zeros(0, dtype=np.float64),
            )
        impl = _kernels.get_kernel(self.kernel_tier)
        if impl.simulate_tables is not None:
            # uint64 -> table_dtype is value-preserving: the bus fits
            tables = impl.simulate_tables(self._slab_plan(), ties).astype(
                self.table_dtype
            )
        else:
            tables = self._tables(self._simulate(ties), len(ties))
        if impl.sweep_ge is not None:
            return tables, impl.sweep_ge(self._sweep_plan(), ties)
        return tables, self._sweep_ge(ties)

    # --- compiled-kernel plans ----------------------------------------

    def _slab_plan(self) -> "_kernels.SlabPlan":
        """Flat register-allocated program for compiled simulate tiers.

        Gate slabs are assigned to reusable workspace buffers from the
        same slab-freeing plan the numpy path uses (kept slots —
        outputs, result wires — never free theirs), so a native kernel
        peaks at exactly the numpy path's live-slab footprint.  A
        freed buffer only becomes reusable on the *next* step, like the
        numpy path, which allocates each step's output before dropping
        the operands it frees.
        """
        if self._slab_plan_cache is not None:
            return self._slab_plan_cache
        program = self._program
        n_steps = len(program)

        slot_src: Dict[int, Tuple[int, int]] = {}
        for i, (slot, _pattern) in enumerate(self._input_patterns):
            slot_src[slot] = (_kernels.SRC_PATTERN, i)
        for slot, value in self.compiled.const_slots:
            slot_src[slot] = (
                _kernels.SRC_ONES if value else _kernels.SRC_ZERO,
                0,
            )
        patterns = np.ascontiguousarray(
            np.stack([pattern for _, pattern in self._input_patterns]),
            dtype=np.uint64,
        )

        out_buf = np.zeros(n_steps, dtype=np.int32)
        in_src = np.full((n_steps, 3), _kernels.SRC_ZERO, dtype=np.uint8)
        in_index = np.zeros((n_steps, 3), dtype=np.int32)
        tie_offsets = np.zeros(n_steps + 1, dtype=np.int64)
        tie_cand: List[int] = []
        tie_const: List[int] = []
        buf_of: Dict[int, int] = {}
        free: List[int] = []
        n_buffers = 0
        for step, (_evaluate, out_slot, in_slots) in enumerate(program):
            for j, slot in enumerate(in_slots):
                if slot in buf_of:
                    in_src[step, j] = _kernels.SRC_BUFFER
                    in_index[step, j] = buf_of[slot]
                else:
                    in_src[step, j], in_index[step, j] = slot_src[slot]
            if free:
                buffer = free.pop()
            else:
                buffer = n_buffers
                n_buffers += 1
            buf_of[out_slot] = buffer
            out_buf[step] = buffer
            for cand_index, const in self._step_ties[step]:
                tie_cand.append(cand_index)
                tie_const.append(const)
            tie_offsets[step + 1] = len(tie_cand)
            for slot in self._free_after[step]:
                freed = buf_of.pop(slot, None)
                if freed is not None:
                    free.append(freed)

        res_src = np.zeros(len(self.circuit.result_wires), dtype=np.uint8)
        res_index = np.zeros(len(self.circuit.result_wires), dtype=np.int32)
        for i, wire in enumerate(self.circuit.result_wires):
            slot = self.compiled.slot_of(wire)
            if slot in buf_of:
                res_src[i] = _kernels.SRC_BUFFER
                res_index[i] = buf_of[slot]
            else:
                res_src[i], res_index[i] = slot_src[slot]

        self._slab_plan_cache = _kernels.SlabPlan(
            n_cases=self.n_cases,
            n_words=self.n_words,
            n_cands=len(self.candidates),
            n_buffers=n_buffers,
            op_kind=np.ascontiguousarray(self._kind0),
            out_buf=out_buf,
            in_src=in_src,
            in_index=in_index,
            patterns=patterns,
            tie_offsets=tie_offsets,
            tie_cand=np.asarray(tie_cand, dtype=np.int32),
            tie_const=np.asarray(tie_const, dtype=np.uint8),
            res_src=res_src,
            res_index=res_index,
        )
        return self._slab_plan_cache

    def _sweep_plan(self) -> "_kernels.SweepPlan":
        """Flat views of the sweep's static tables for compiled tiers."""
        if self._sweep_plan_cache is None:
            self._sweep_plan_cache = _kernels.SweepPlan(
                n_slots=self.n_slots,
                n_cands=len(self.candidates),
                max_passes=16,
                gate_out=np.ascontiguousarray(self._gate_out),
                kind0=np.ascontiguousarray(self._kind0),
                ins0=np.ascontiguousarray(self._ins0),
                val0=np.ascontiguousarray(self._val0),
                is_gate0=np.ascontiguousarray(
                    self._is_gate0, dtype=np.uint8
                ),
                cand_slots=np.ascontiguousarray(self._cand_slots),
                cand_consts=np.ascontiguousarray(self._cand_consts),
                out_slots=np.ascontiguousarray(self._netlist_out_slots),
                arity=np.ascontiguousarray(_ARITY),
                ge=np.ascontiguousarray(_GE),
            )
        return self._sweep_plan_cache

    # --- population simulation ----------------------------------------

    def _simulate(self, ties: np.ndarray) -> List[Optional[np.ndarray]]:
        """Run the compiled program over (P, n_words) slabs."""
        population = ties.shape[0]
        shape = (population, self.n_words)
        storage: List[Optional[np.ndarray]] = [None] * self.n_slots

        for slot, pattern in self._input_patterns:
            storage[slot] = np.broadcast_to(pattern, shape)
        zero = np.broadcast_to(np.zeros(self.n_words, dtype=np.uint64), shape)
        ones = np.broadcast_to(
            np.full(self.n_words, _ALL_ONES, dtype=np.uint64), shape
        )
        for slot, value in self.compiled.const_slots:
            storage[slot] = ones if value else zero

        for step, (evaluate, out_slot, in_slots) in enumerate(self._program):
            operands = tuple(storage[s] for s in in_slots)
            out = evaluate(operands)  # type: ignore[arg-type]
            for cand_index, const in self._step_ties[step]:
                rows = ties[:, cand_index]
                if rows.any():
                    out[rows] = _ALL_ONES if const else np.uint64(0)
            storage[out_slot] = out
            for slot in self._free_after[step]:
                storage[slot] = None
        return storage

    def _tables(
        self, storage: List[Optional[np.ndarray]], population: int
    ) -> np.ndarray:
        """Combine output slabs into per-genome result tables
        (narrowest unsigned dtype that fits the result bus).

        Unpacks each result wire into a per-case bit plane, re-packs
        the planes across the wire axis (eight planes per byte), and
        byte-stores the packed planes straight into the little-endian
        uint64 table — the same value :func:`bus_to_uint` computes,
        without a 64-bit temporary per wire.
        """
        wires = self.circuit.result_wires
        # accumulate one uint8 plane per result *byte* (wires 0-7 in
        # plane 0, 8-15 in plane 1, ...) — all the shift/OR traffic
        # stays in the narrowest possible lane — then interleave the
        # planes into the final little-endian integer table
        n_bytes = -(-len(wires) // 8)
        planes = [
            np.zeros((population, self.n_cases), dtype=np.uint8)
            for _ in range(n_bytes)
        ]
        for i, wire in enumerate(wires):
            packed = storage[self.compiled.slot_of(wire)]
            assert packed is not None
            as_bytes = (
                np.ascontiguousarray(packed, dtype=np.uint64)
                .astype("<u8")
                .view(np.uint8)
                .reshape(population, self.n_words * 8)
            )
            bits = np.unpackbits(as_bytes, axis=1, bitorder="little")[
                :, : self.n_cases
            ]
            plane = planes[i // 8]
            if i % 8:
                np.bitwise_or(plane, bits << np.uint8(i % 8), out=plane)
            else:
                np.bitwise_or(plane, bits, out=plane)
        if n_bytes == 1:
            return planes[0]
        dtype = self.table_dtype
        table = np.zeros((population, self.n_cases), dtype=dtype)
        if sys.byteorder == "little":
            table_bytes = table.view(np.uint8).reshape(
                population, self.n_cases, np.dtype(dtype).itemsize
            )
            for b, plane in enumerate(planes):
                table_bytes[:, :, b] = plane
        else:  # pragma: no cover - no big-endian CI runner
            for b, plane in enumerate(planes):
                table |= plane.astype(dtype) << dtype(8 * b)
        return table

    # --- vectorized constant propagation + liveness -------------------

    def _sweep_ge(self, ties: np.ndarray) -> np.ndarray:
        """Per-genome ``netlist_ge`` of the pruned-and-simplified netlist.

        Mirrors :func:`repro.circuits.transform.simplify` pass for pass
        (constant propagation to fixpoint, 16-pass cap, dead-gate
        removal), with every per-wire state carried across the
        population axis.
        """
        population = ties.shape[0]
        pidx = np.arange(population)
        n_gates = self.n_gates

        val = np.repeat(self._val0[:, None], population, axis=1)
        is_gate = np.repeat(self._is_gate0[:, None], population, axis=1)
        rep = np.repeat(
            np.arange(self.n_slots, dtype=np.int32)[:, None],
            population,
            axis=1,
        )
        kind = np.repeat(self._kind0[:, None], population, axis=1)
        ins = np.repeat(self._ins0[:, :, None], population, axis=2)

        # prune_wires: drop the tied gates, tie their wires to constants
        for index in range(len(self._cand_slots)):
            rows = ties[:, index]
            if rows.any():
                slot = self._cand_slots[index]
                is_gate[slot, rows] = False
                val[slot, rows] = self._cand_consts[index]

        gate_out = self._gate_out

        # Dirty-set pass scheduling.  Processing a gate is the identity
        # unless an input's state changed since it was last processed,
        # or the gate itself was rewritten (its new form may enable a
        # new rule), or it belongs to the always-dirty seed (BUF,
        # duplicate inputs, base-constant readers).  Changes propagate
        # downstream *within* a pass — exactly as the reference's
        # in-topological-order sweep sees them — by marking consumers
        # dirty for the current pass (consumers always sit later in the
        # program), so pass k applies exactly the reference's pass k.
        consumers: List[List[int]] = [
            list(c) for c in self._consumers0
        ]
        dirty = self._seed_dirty.copy()
        selected = ties.any(axis=0)
        for index in np.nonzero(selected)[0]:
            for g in self._consumers0[self._cand_slots[index]]:
                dirty[g] = True

        for _pass in range(16):
            changed = False
            dirty_next = np.zeros(n_gates, dtype=bool)
            for g in range(n_gates):
                if not dirty[g]:
                    continue
                w = gate_out[g]
                active = is_gate[w]
                if not active.any():
                    continue
                kw = kind[g]
                ar = _ARITY[kw]
                i0 = ins[g, 0]
                i1 = ins[g, 1]
                i2 = ins[g, 2]
                r0 = rep[i0, pidx]
                r1 = rep[i1, pidx]
                r2 = rep[i2, pidx]
                v0 = val[r0, pidx]
                v1 = val[r1, pidx]
                v2 = val[r2, pidx]

                ch0 = active & (r0 != i0)
                ch1 = active & (ar >= 2) & (r1 != i1)
                ch2 = active & (ar >= 3) & (r2 != i2)
                rewired = bool((ch0 | ch1 | ch2).any())
                if rewired:
                    changed = True
                    dirty_next[g] = True
                    ins[g, 0][ch0] = r0[ch0]
                    ins[g, 1][ch1] = r1[ch1]
                    ins[g, 2][ch2] = r2[ch2]
                    for rk, chk in ((r0, ch0), (r1, ch1), (r2, ch2)):
                        for slot in np.unique(rk[chk]):
                            consumers[slot].append(g)

                touched, rewritten = self._apply_rules(
                    g, w, active, kw, r0, r1, r2, v0, v1, v2,
                    val, is_gate, rep, kind, ins, pidx,
                )
                if touched:
                    # w's value/alias changed: consumers later in the
                    # program must see it this pass, like the reference
                    changed = True
                    for c in consumers[w]:
                        dirty[c] = True
                if rewritten:
                    changed = True
                    dirty_next[g] = True
            dirty = dirty_next
            if not changed:
                break

        # path-compress alias chains formed across passes, then resolve
        # the primary outputs per genome
        while True:
            compressed = rep[rep, pidx[None, :]]
            if np.array_equal(compressed, rep):
                break
            rep = compressed

        live = np.zeros((self.n_slots, population), dtype=bool)
        out_rep = rep[self._netlist_out_slots, :]
        live[out_rep, pidx[None, :]] = True
        for g in range(n_gates - 1, -1, -1):
            w = gate_out[g]
            mask = live[w] & is_gate[w]
            if not mask.any():
                continue
            ar = _ARITY[kind[g]]
            for k in range(3):
                mk = mask & (ar > k)
                if mk.any():
                    live[ins[g, k][mk], pidx[mk]] = True

        alive = live[gate_out] & is_gate[gate_out]
        return np.sum(_GE[kind] * alive, axis=0)

    def _apply_rules(
        self, g, w, active, kw, r0, r1, r2, v0, v1, v2,
        val, is_gate, rep, kind, ins, pidx,
    ) -> Tuple[bool, bool]:
        """One :func:`simplify_gate` step for every genome of one gate.

        Returns ``(touched, rewritten)``: ``touched`` when any genome's
        gate folded to a constant or aliased away (consumer-visible —
        they must reprocess this pass), ``rewritten`` when any genome's
        gate changed kind or inputs (self-visible — it must reprocess
        next pass).
        """
        touched = False
        rewritten = False

        def fold(mask: np.ndarray, values: np.ndarray) -> None:
            nonlocal touched
            if mask.any():
                touched = True
                val[w, mask] = values[mask] if values.ndim else values
                is_gate[w, mask] = False

        def alias(mask: np.ndarray, target: np.ndarray) -> None:
            nonlocal touched
            if mask.any():
                touched = True
                rep[w, mask] = target[mask]
                is_gate[w, mask] = False

        def rewrite1(mask: np.ndarray, target: np.ndarray) -> None:
            nonlocal rewritten
            if mask.any():
                rewritten = True
                kind[g, mask] = _K_NOT
                ins[g, 0][mask] = target[mask]

        def rewrite2(
            mask: np.ndarray, code: int, a: np.ndarray, b: np.ndarray
        ) -> None:
            nonlocal rewritten
            if mask.any():
                rewritten = True
                kind[g, mask] = code
                ins[g, 0][mask] = a[mask]
                ins[g, 1][mask] = b[mask]

        if bool((kw == kw[0]).all()):
            codes = (int(kw[0]),)  # the common case: one kind everywhere
        else:
            codes = np.unique(kw[active])
        for code in codes:
            group = active & (kw == code)

            if code == _K_NOT:
                fold(group & (v0 >= 0), 1 - v0)
                continue
            if code == _K_BUF:
                known = group & (v0 >= 0)
                fold(known, v0)
                alias(group & ~known, r0)
                continue
            if code == _K_MUX:
                und = group.copy()
                k0 = v0 >= 0
                k1 = v1 >= 0
                k2 = v2 >= 0
                allc = und & k0 & k1 & k2
                fold(allc, np.where(v2 == 1, v1, v0))
                und &= ~allc
                sel0 = und & k2 & (v2 == 0)
                fold(sel0 & k0, v0)
                alias(sel0 & ~k0, r0)
                und &= ~sel0
                sel1 = und & k2 & (v2 == 1)
                fold(sel1 & k1, v1)
                alias(sel1 & ~k1, r1)
                und &= ~sel1
                same = und & (r0 == r1)
                fold(same & k0, v0)
                alias(same & ~k0, r0)
                und &= ~same
                to_sel = und & k0 & (v0 == 0) & k1 & (v1 == 1)
                alias(to_sel, r2)
                und &= ~to_sel
                to_not = und & k0 & (v0 == 1) & k1 & (v1 == 0)
                rewrite1(to_not, r2)
                und &= ~to_not
                to_and = und & k0 & (v0 == 0)
                rewrite2(to_and, _K_AND, r1, r2)
                und &= ~to_and
                to_or = und & k1 & (v1 == 1)
                rewrite2(to_or, _K_OR, r0, r2)
                continue

            # two-input commutative kinds: normalise a constant first
            k0 = v0 >= 0
            k1 = v1 >= 0
            und = group.copy()
            allc = und & k0 & k1
            if allc.any():
                if code == _K_AND:
                    out = v0 & v1
                elif code == _K_OR:
                    out = v0 | v1
                elif code == _K_NAND:
                    out = 1 - (v0 & v1)
                elif code == _K_NOR:
                    out = 1 - (v0 | v1)
                elif code == _K_XOR:
                    out = v0 ^ v1
                else:  # XNOR
                    out = 1 - (v0 ^ v1)
                fold(allc, out.astype(np.int8))
                und &= ~allc
            swap = und & k1 & ~k0
            x = np.where(swap, r1, r0)
            vx = np.where(swap, v1, v0)
            y = np.where(swap, r0, r1)
            kx = k0 | k1  # post-swap: vx known iff either side known

            if code == _K_AND:
                fold(und & kx & (vx == 0), np.zeros_like(vx))
                alias(und & kx & (vx == 1), y)
                alias(und & ~kx & (x == y), x)
            elif code == _K_OR:
                fold(und & kx & (vx == 1), np.ones_like(vx))
                alias(und & kx & (vx == 0), y)
                alias(und & ~kx & (x == y), x)
            elif code == _K_NAND:
                fold(und & kx & (vx == 0), np.ones_like(vx))
                rewrite1(und & kx & (vx == 1), y)
                rewrite1(und & ~kx & (x == y), x)
            elif code == _K_NOR:
                fold(und & kx & (vx == 1), np.zeros_like(vx))
                rewrite1(und & kx & (vx == 0), y)
                rewrite1(und & ~kx & (x == y), x)
            elif code == _K_XOR:
                alias(und & kx & (vx == 0), y)
                rewrite1(und & kx & (vx == 1), y)
                fold(und & ~kx & (x == y), np.zeros_like(vx))
            elif code == _K_XNOR:
                rewrite1(und & kx & (vx == 0), y)
                alias(und & kx & (vx == 1), y)
                fold(und & ~kx & (x == y), np.ones_like(vx))
        return touched, rewritten
