"""Gate-level circuit substrate.

This package provides everything the approximate-multiplier flow needs
from a logic-synthesis tool, implemented from scratch:

* a small combinational netlist IR (:mod:`repro.circuits.netlist`),
* generators for exact adders and multipliers
  (:mod:`repro.circuits.synthesis`),
* a vectorised simulator able to evaluate an 8x8 multiplier on all
  65536 input pairs in milliseconds (:mod:`repro.circuits.simulate`),
* a population-batched evaluator that scores a whole generation of
  pruning genomes against one compiled base circuit — truth tables
  and simplified areas bit-identical to the per-genome path
  (:mod:`repro.circuits.batched`),
* netlist rewrites used by gate-level pruning
  (:mod:`repro.circuits.transform`),
* area / delay estimation per technology node
  (:mod:`repro.circuits.area`), and
* verification helpers (:mod:`repro.circuits.verify`).
"""

from repro.circuits.gates import Gate, GateKind, GATE_LIBRARY
from repro.circuits.netlist import Netlist
from repro.circuits.batched import BatchedCircuitEvaluator
from repro.circuits.simulate import CompiledNetlist, simulate, exhaustive_table
from repro.circuits.synthesis import (
    ripple_carry_adder,
    array_multiplier,
    wallace_multiplier,
    dadda_multiplier,
    make_multiplier,
)
from repro.circuits.area import GateAreaModel, netlist_area_um2, netlist_delay_ps
from repro.circuits.transform import (
    propagate_constants,
    remove_dead_gates,
    prune_wires,
    simplify,
)
from repro.circuits.verify import equivalent, validate_netlist

__all__ = [
    "Gate",
    "GateKind",
    "GATE_LIBRARY",
    "Netlist",
    "BatchedCircuitEvaluator",
    "CompiledNetlist",
    "simulate",
    "exhaustive_table",
    "ripple_carry_adder",
    "array_multiplier",
    "wallace_multiplier",
    "dadda_multiplier",
    "make_multiplier",
    "GateAreaModel",
    "netlist_area_um2",
    "netlist_delay_ps",
    "propagate_constants",
    "remove_dead_gates",
    "prune_wires",
    "simplify",
    "equivalent",
    "validate_netlist",
]
