"""Radix-4 (modified) Booth multiplier for signed operands.

The paper's flow runs unsigned magnitude multipliers with external sign
handling (NVDLA's arrangement).  Real accelerators also use signed
Booth arrays, so the library provides one as an additional base family
for the approximation flow and for signed-arithmetic experiments.

Implementation: classic radix-4 recoding of the multiplier ``B`` into
``n/2`` digits in {-2, -1, 0, +1, +2}.  Each digit selects 0 / A / 2A,
conditionally inverted for negative digits with the +1 correction
injected into the digit's column; partial products are sign-extended to
the full product width and compressed with the shared Wallace
machinery.  The product is exact two's-complement, truncated to
``2 * width`` bits (which holds every signed 8x8 product).
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.circuits.gates import GateKind
from repro.circuits.netlist import Netlist, declare_input_bus
from repro.circuits.synthesis import (
    ArithmeticCircuit,
    carry_propagate,
    compress_columns,
)
from repro.errors import SynthesisError


def _booth_digit_controls(
    nl: Netlist, b1: str, b0: str, bm1: Optional[str], tag: str
) -> Tuple[str, str, str]:
    """(one, two, neg) control signals of one radix-4 digit.

    ``bm1`` is None for the first group (b_{-1} = 0), which collapses
    the recoding logic.
    """
    if bm1 is None:
        # b_{-1} = 0: one = b0, two = b1 & !b0, neg = b1
        one = nl.add_gate(GateKind.BUF, (b0,), nl.fresh_wire(f"one{tag}_"))
        not_b0 = nl.add_gate(GateKind.NOT, (b0,), nl.fresh_wire(f"nb0{tag}_"))
        two = nl.add_gate(
            GateKind.AND, (b1, not_b0), nl.fresh_wire(f"two{tag}_")
        )
        neg = nl.add_gate(GateKind.BUF, (b1,), nl.fresh_wire(f"neg{tag}_"))
        return one, two, neg

    one = nl.add_gate(GateKind.XOR, (b0, bm1), nl.fresh_wire(f"one{tag}_"))
    # two: digit is +-2 <=> (b1, b0, bm1) in {(1,0,0), (0,1,1)}
    b0_and_bm1 = nl.add_gate(
        GateKind.AND, (b0, bm1), nl.fresh_wire(f"band{tag}_")
    )
    not_b1 = nl.add_gate(GateKind.NOT, (b1,), nl.fresh_wire(f"nb1{tag}_"))
    pos_two = nl.add_gate(
        GateKind.AND, (not_b1, b0_and_bm1), nl.fresh_wire(f"ptwo{tag}_")
    )
    neither = nl.add_gate(
        GateKind.NOR, (b0, bm1), nl.fresh_wire(f"nor{tag}_")
    )
    neg_two = nl.add_gate(
        GateKind.AND, (b1, neither), nl.fresh_wire(f"ntwo{tag}_")
    )
    two = nl.add_gate(
        GateKind.OR, (pos_two, neg_two), nl.fresh_wire(f"two{tag}_")
    )
    # neg: digit < 0 <=> b1 & !(b0 & bm1)
    not_both = nl.add_gate(
        GateKind.NOT, (b0_and_bm1,), nl.fresh_wire(f"nboth{tag}_")
    )
    neg = nl.add_gate(
        GateKind.AND, (b1, not_both), nl.fresh_wire(f"neg{tag}_")
    )
    return one, two, neg


def booth_multiplier(
    width: int = 8, name: Optional[str] = None
) -> ArithmeticCircuit:
    """Signed radix-4 Booth multiplier, ``width`` x ``width`` bits.

    Args:
        width: operand width; must be even (radix-4 digit pairs).

    Returns:
        Circuit whose result bus holds the two's-complement product
        truncated to ``2 * width`` bits.
    """
    if width < 2 or width % 2:
        raise SynthesisError(
            f"Booth radix-4 needs an even width >= 2, got {width}"
        )
    if 2 * width > 26:
        raise SynthesisError(
            f"{width}x{width} Booth would need 2^{2 * width} exhaustive "
            "cases; refusing"
        )
    n = width
    out_width = 2 * n
    nl = Netlist(name or f"mul{n}x{n}_booth")
    a = declare_input_bus(nl, "a", n)
    b = declare_input_bus(nl, "b", n)

    columns: List[List[str]] = [[] for _ in range(out_width)]
    for j in range(n // 2):
        tag = f"g{j}"
        b1 = b[2 * j + 1]
        b0 = b[2 * j]
        bm1 = b[2 * j - 1] if j > 0 else None
        one, two, neg = _booth_digit_controls(nl, b1, b0, bm1, tag)

        # 9-bit magnitude row: (one ? A : two ? 2A : 0), then XOR neg
        pp_bits: List[str] = []
        for i in range(n + 1):
            a_for_one = a[i] if i < n else a[n - 1]  # sign-extend A
            sel_one = nl.add_gate(
                GateKind.AND, (one, a_for_one), nl.fresh_wire(f"s1{tag}_{i}_")
            )
            if i == 0:
                pre = sel_one  # 2A has a zero LSB
            else:
                sel_two = nl.add_gate(
                    GateKind.AND, (two, a[i - 1]), nl.fresh_wire(f"s2{tag}_{i}_")
                )
                pre = nl.add_gate(
                    GateKind.OR, (sel_one, sel_two), nl.fresh_wire(f"pre{tag}_{i}_")
                )
            pp = nl.add_gate(
                GateKind.XOR, (pre, neg), nl.fresh_wire(f"pp{tag}_{i}_")
            )
            pp_bits.append(pp)

        base = 2 * j
        for i, wire in enumerate(pp_bits):
            position = base + i
            if position < out_width:
                columns[position].append(wire)
        # sign-extend the row's MSB across the remaining product bits
        sign = pp_bits[-1]
        for position in range(base + n + 1, out_width):
            columns[position].append(sign)
        # +1 correction for negative digits (two's-complement negate)
        columns[base].append(neg)

    columns = compress_columns(nl, columns, cap=out_width)
    outputs = carry_propagate(nl, columns, cap=out_width)
    outputs = outputs[:out_width]
    for wire in outputs:
        nl.add_output(wire)
    return ArithmeticCircuit(nl, tuple(a), tuple(b), tuple(outputs))
