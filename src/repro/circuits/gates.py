"""Combinational gate library.

Each gate kind carries:

* its logic function, expressed over numpy arrays so the simulator can
  evaluate a whole input batch with one vectorised operation;
* a static-CMOS transistor count, the basis of the area model (we report
  areas in NAND2-equivalents, the unit synthesis tools use);
* an intrinsic delay weight used for critical-path estimation.

The library is intentionally small — INV/BUF plus the standard two-input
cells and a 2:1 MUX — matching what the multiplier generators emit.
Constants (logic 0/1) are represented at the netlist level, not as gates.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Callable, Dict, Tuple

import numpy as np

Array = np.ndarray


class GateKind(enum.Enum):
    """Supported combinational cell types."""

    NOT = "not"
    BUF = "buf"
    AND = "and"
    OR = "or"
    NAND = "nand"
    NOR = "nor"
    XOR = "xor"
    XNOR = "xnor"
    MUX = "mux"  # inputs (a, b, sel): output = b if sel else a


def _eval_not(ins: Tuple[Array, ...]) -> Array:
    return ~ins[0]


def _eval_buf(ins: Tuple[Array, ...]) -> Array:
    return ins[0].copy()


def _eval_and(ins: Tuple[Array, ...]) -> Array:
    return ins[0] & ins[1]


def _eval_or(ins: Tuple[Array, ...]) -> Array:
    return ins[0] | ins[1]


def _eval_nand(ins: Tuple[Array, ...]) -> Array:
    return ~(ins[0] & ins[1])


def _eval_nor(ins: Tuple[Array, ...]) -> Array:
    return ~(ins[0] | ins[1])


def _eval_xor(ins: Tuple[Array, ...]) -> Array:
    return ins[0] ^ ins[1]


def _eval_xnor(ins: Tuple[Array, ...]) -> Array:
    return ~(ins[0] ^ ins[1])


def _eval_mux(ins: Tuple[Array, ...]) -> Array:
    a, b, sel = ins
    return (a & ~sel) | (b & sel)


@dataclass(frozen=True)
class GateSpec:
    """Static properties of a gate kind.

    Attributes:
        kind: the gate type this spec describes.
        n_inputs: number of input pins.
        transistors: static-CMOS transistor count of the cell.
        delay_weight: relative intrinsic delay (NAND2 == 1.0); multiplied
            by the per-node gate delay to obtain picoseconds.
        evaluate: bitwise evaluation over packed-uint64 or boolean arrays.
    """

    kind: GateKind
    n_inputs: int
    transistors: int
    delay_weight: float
    evaluate: Callable[[Tuple[Array, ...]], Array]

    @property
    def nand2_equivalents(self) -> float:
        """Cell size in NAND2-equivalents (4 transistors == 1 GE)."""
        return self.transistors / 4.0


GATE_LIBRARY: Dict[GateKind, GateSpec] = {
    GateKind.NOT: GateSpec(GateKind.NOT, 1, 2, 0.6, _eval_not),
    GateKind.BUF: GateSpec(GateKind.BUF, 1, 4, 0.8, _eval_buf),
    GateKind.AND: GateSpec(GateKind.AND, 2, 6, 1.2, _eval_and),
    GateKind.OR: GateSpec(GateKind.OR, 2, 6, 1.2, _eval_or),
    GateKind.NAND: GateSpec(GateKind.NAND, 2, 4, 1.0, _eval_nand),
    GateKind.NOR: GateSpec(GateKind.NOR, 2, 4, 1.0, _eval_nor),
    GateKind.XOR: GateSpec(GateKind.XOR, 2, 10, 1.8, _eval_xor),
    GateKind.XNOR: GateSpec(GateKind.XNOR, 2, 10, 1.8, _eval_xnor),
    GateKind.MUX: GateSpec(GateKind.MUX, 3, 12, 1.6, _eval_mux),
}


@dataclass(frozen=True)
class Gate:
    """One gate instance in a netlist.

    Attributes:
        kind: gate type, a :class:`GateKind`.
        inputs: names of the wires feeding the input pins, in pin order.
        output: name of the single output wire this gate drives.
    """

    kind: GateKind
    inputs: Tuple[str, ...]
    output: str

    def __post_init__(self) -> None:
        spec = GATE_LIBRARY[self.kind]
        if len(self.inputs) != spec.n_inputs:
            raise ValueError(
                f"{self.kind.value} gate expects {spec.n_inputs} inputs, "
                f"got {len(self.inputs)} driving '{self.output}'"
            )

    @property
    def spec(self) -> GateSpec:
        """Static cell properties for this gate's kind."""
        return GATE_LIBRARY[self.kind]

    def with_inputs(self, inputs: Tuple[str, ...]) -> "Gate":
        """Return a copy of this gate with rewired input pins."""
        return Gate(self.kind, inputs, self.output)


# Truth-table helpers used by constant propagation ---------------------------

def gate_output_for_constants(kind: GateKind, values: Tuple[int, ...]) -> int:
    """Evaluate a gate on scalar 0/1 inputs.

    Used by :mod:`repro.circuits.transform` when every input of a gate is
    a known constant.
    """
    arrays = tuple(np.array([v], dtype=bool) for v in values)
    result = GATE_LIBRARY[kind].evaluate(arrays)
    return int(bool(result[0]))
