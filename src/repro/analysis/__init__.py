"""Static invariant checker for the engine's reproducibility contracts.

Eight PRs of parallelism made the headline guarantee — every execution
mode is bit-identical to the serial reference — depend on conventions
that runtime tests only catch after the fact, on exercised paths.
This package checks them at lint time, on every path, with stdlib
``ast`` alone (no numpy: the CI ``analysis`` job runs on a bare
interpreter)::

    python -m repro.analysis src benchmarks
    python -m repro.analysis --format json --strict src
    repro lint-invariants            # same checker via the main CLI

Exit code 0 means no unsuppressed errors; 1 means findings; 2 means
the checker itself was invoked incorrectly.

Rule inventory
==============

``RNG001`` — RNG discipline (error)
    No calls that draw from ambient module-level RNG state
    (``random.random()``, ``numpy.random.seed()``, ...): hidden global
    state makes results depend on call order across shards.  Seeded
    constructors are allowed (``random.Random(seed)``,
    ``numpy.random.default_rng(seed)``, ``SeedSequence``, bit
    generators) — generator *objects* are threaded through call
    chains, exactly like the engine's cell functions receive them.

``NDT001`` — wall-clock/nondeterminism sources (error)
    No ``time.time``/``time_ns``, ``os.urandom``, ``uuid.uuid1/4``,
    ``secrets.*``, ``datetime.now/utcnow/today`` in checked code, and
    no iteration over set literals (hash-seed-dependent order) — any
    of these feeding a result breaks run-to-run bit-identity.
    ``time.monotonic``/``time.perf_counter`` stay legal: measuring
    durations is fine, recording wall-clock values as data is not.

``PKL001`` — backend-boundary picklability (error)
    Callables handed to ``EngineSession.submit``/``map_shards`` or
    ``ExecutionPlan.for_cells``/``for_batches`` cross a pickle
    boundary under process/remote dispatch: lambdas are flagged
    outright, and nested functions are flagged when they close over
    unpicklable state (locks, open files, sockets, connections).

``FPR001`` — fingerprint completeness (error)
    A config dataclass whose class line carries
    ``# repro: fingerprinted[DECL]`` must keep every field in sync
    with the module-level ``DECL = ("field", ...)`` trajectory
    declaration that feeds
    :func:`repro.engine.checkpoint.trajectory_parts`:
    every field is either listed in ``DECL`` or annotated
    ``# repro: non-trajectory[reason]`` (same line or the line
    above), and every declared name must still be a field.  This
    catches both halves of the "new knob silently missing from resume
    refusal" bug class: adding an undeclared field fails, deleting a
    declared one fails.

``KRN001`` — kernel-tier parity (error)
    Every ``KernelImpl(...)`` site provides either the full kernel
    set (``simulate_tables``, ``sweep_ge``, ``lut_tile``) or none of
    it (the numpy reference tier); partial tiers would silently fall
    back to numpy mid-pipeline and make benchmark tiers
    incomparable.  Kernel fields must be keywords, unknown fields are
    flagged, and locally-defined kernel callables must match the
    reference arity (2/2/4).

``DEP001`` — deprecation hygiene (error)
    No callers of the deprecated ``GridRunner.map``/``map_batches``
    shims; use ``runner.run(ExecutionPlan.for_cells(...))`` /
    ``for_batches(...)``.

``TMO001`` — bounded blocking in engine code (error)
    Scoped to modules under an ``engine/`` directory: ``.wait()``
    calls must pass a timeout (bare ``Event.wait()`` /
    ``Condition.wait()`` / ``proc.wait()`` are flagged),
    ``socket.create_connection`` must pass a dial timeout, and
    ``settimeout(None)`` — unbounded socket blocking — is flagged.
    Unbounded blocking is how a hung peer becomes a hung fleet; the
    self-healing layer (per-task deadlines, redial, deadline sweeps)
    only works because every engine wait eventually returns.  A
    deliberately unbounded wait carries a noqa with its reason.

``SUP001`` — suppression hygiene (error)
    Every suppression comment must name known rule codes.  A bare
    ``# repro: noqa`` or an unknown code is itself a finding, so the
    suppression inventory stays auditable.

Suppression syntax
==================

``# repro: noqa[CODE]`` (or ``noqa[CODE1,CODE2]``) trailing a
statement suppresses those rules on that line; on a comment-only line
it suppresses them for the whole file.  Suppressed findings still
appear in the report (counted, marked ``suppressed``) but never
affect the exit code.

Extending
=========

Register new rules through :func:`register_rule` — the registry
mirrors :func:`repro.engine.backends.register_backend` /
:func:`repro.engine.kernels.register_kernel_tier`, except duplicate
codes *raise*: codes appear in ``noqa`` comments across the tree, so
two rules sharing one would mute each other.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.analysis.core import (
    AnalysisContext,
    AnalysisError,
    AnalysisReport,
    Finding,
    ModuleInfo,
    Rule,
    get_rule,
    register_rule,
    rule_codes,
    run_analysis,
    unregister_rule,
)
from repro.analysis import rules as _rules  # registers the built-in rules

__all__ = [
    "AnalysisContext",
    "AnalysisError",
    "AnalysisReport",
    "Finding",
    "ModuleInfo",
    "Rule",
    "get_rule",
    "main",
    "register_rule",
    "rule_codes",
    "run_analysis",
    "unregister_rule",
]

#: Default scan roots when the command line names none (missing roots
#: are skipped so the command works from a partial checkout).
DEFAULT_PATHS = ("src", "benchmarks")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro lint-invariants",
        description=(
            "statically check the engine's determinism, picklability, "
            "and fingerprint contracts (see 'pydoc repro.analysis' for "
            "the rule inventory)"
        ),
    )
    parser.add_argument(
        "paths", nargs="*", metavar="PATH",
        help="files and/or directories to check (default: src "
        "benchmarks, skipping roots that do not exist)",
    )
    parser.add_argument(
        "--format", choices=("human", "json"), default="human",
        help="output format (default: human)",
    )
    parser.add_argument(
        "--rules", metavar="CODE[,CODE...]", default=None,
        help="comma-separated rule codes to run (default: all)",
    )
    parser.add_argument(
        "--strict", action="store_true",
        help="warnings also fail the run (errors always do)",
    )
    parser.add_argument(
        "--list-rules", action="store_true",
        help="print the registered rules and exit",
    )
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point shared by ``python -m repro.analysis`` and
    ``repro lint-invariants``."""
    args = build_parser().parse_args(argv)

    if args.list_rules:
        for code in rule_codes():
            rule = get_rule(code)
            print(f"{code}  {rule.severity:7s}  {rule.description}")
        return 0

    paths = args.paths
    if not paths:
        from pathlib import Path

        paths = [root for root in DEFAULT_PATHS if Path(root).exists()]
        if not paths:
            print(
                "error: no paths given and no default root "
                f"({'/'.join(DEFAULT_PATHS)}) exists here",
                file=sys.stderr,
            )
            return 2

    codes = None
    if args.rules is not None:
        codes = [code.strip() for code in args.rules.split(",") if code.strip()]

    try:
        report = run_analysis(paths, codes=codes)
    except AnalysisError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    if args.format == "json":
        sys.stdout.write(report.to_json())
    else:
        print(report.render_human())
    return report.exit_code(strict=args.strict)
