"""``python -m repro.analysis`` — run the invariant checker."""

from __future__ import annotations

import sys

from repro.analysis import main

if __name__ == "__main__":
    sys.exit(main())
