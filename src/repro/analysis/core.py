"""The AST lint framework behind ``repro lint-invariants``.

This module is deliberately dependency-free (stdlib ``ast`` only), so
the checker runs on a bare interpreter — the CI ``analysis`` job does
not install numpy.  It provides:

* :class:`Finding` — one diagnostic, machine-renderable
  (``--format json``) and human-renderable;
* :func:`register_rule` — the rule registry, mirroring the
  :func:`repro.engine.backends.register_backend` /
  :func:`repro.engine.kernels.register_kernel_tier` idiom: a rule is a
  ``(code, checker, severity)`` triple, duplicate codes raise, unknown
  severities are rejected;
* suppression parsing — ``# repro: noqa[CODE]`` as a trailing comment
  suppresses that rule on that line; on a comment-only line it
  suppresses the rule for the whole file.  A suppression *must* name
  rule codes — a bare ``# repro: noqa`` (or an unknown code) is itself
  a finding (``SUP001``), so the suppression inventory stays auditable;
* :func:`run_analysis` — parse a file set once into
  :class:`ModuleInfo` records, run every registered checker over the
  whole set (rules may be cross-file), apply suppressions, and return
  a deterministic :class:`AnalysisReport`.

The built-in invariant rules live in :mod:`repro.analysis.rules`; the
rule-code inventory and the contracts they enforce are documented in
the package docstring (:mod:`repro.analysis`) and PERF.md.
"""

from __future__ import annotations

import ast
import json
import re
import tokenize
from dataclasses import dataclass, field
from io import StringIO
from pathlib import Path
from typing import Callable, Dict, Iterable, Iterator, List, Optional, Set, Tuple

from repro.errors import ReproError


class AnalysisError(ReproError):
    """The invariant checker was configured or invoked inconsistently."""


#: Valid rule severities.  ``error`` findings fail the run (exit 1);
#: ``warning`` findings are reported but gate only under ``--strict``.
SEVERITIES = ("error", "warning")

#: Rule codes match this shape (letters + three digits, e.g. RNG001).
_CODE_RE = re.compile(r"^[A-Z][A-Z0-9]{1,7}\d{3}$")

#: Suppression comments ("repro:" then "noqa[CODE,...]") — bracket
#: part optional so that a bare (invalid) suppression can be
#: diagnosed instead of silently ignored.
_NOQA_RE = re.compile(r"#\s*repro:\s*noqa(?:\[([^\]]*)\])?")


@dataclass(frozen=True)
class Finding:
    """One diagnostic from one rule.

    Attributes:
        code: rule code (e.g. ``RNG001``).
        severity: ``error`` or ``warning``.
        path: file the finding is anchored in (as given to the run).
        line: 1-based line number.
        message: human-readable statement of the violated contract.
        suppressed: True when a ``# repro: noqa[code]`` covers it —
            suppressed findings stay in the report (JSON consumers and
            the summary count them) but never affect the exit code.
    """

    code: str
    severity: str
    path: str
    line: int
    message: str
    suppressed: bool = False

    def render(self) -> str:
        tag = " (suppressed)" if self.suppressed else ""
        return (
            f"{self.path}:{self.line}: {self.code} "
            f"{self.severity}: {self.message}{tag}"
        )


@dataclass(frozen=True)
class Rule:
    """One registered invariant rule."""

    code: str
    severity: str
    description: str
    checker: Callable[["AnalysisContext"], Iterable[Finding]]


@dataclass
class ModuleInfo:
    """One parsed source file plus its suppression tables."""

    path: str
    source: str
    lines: List[str]
    tree: ast.Module
    #: line number -> rule codes suppressed on that line
    line_suppressions: Dict[int, Set[str]] = field(default_factory=dict)
    #: rule codes suppressed for the whole file
    file_suppressions: Set[str] = field(default_factory=set)
    #: (line, problem) pairs for malformed suppressions (feeds SUP001)
    bad_suppressions: List[Tuple[int, str]] = field(default_factory=list)

    def finding(self, code: str, line: int, message: str) -> Finding:
        """Build a finding anchored in this module (severity filled later)."""
        return Finding(
            code=code, severity="error", path=self.path,
            line=line, message=message,
        )


@dataclass
class AnalysisContext:
    """Everything a checker sees: the whole parsed file set."""

    modules: List[ModuleInfo]

    def module(self, suffix: str) -> Optional[ModuleInfo]:
        """The first module whose path ends with ``suffix`` (or None)."""
        for info in self.modules:
            if info.path.endswith(suffix):
                return info
        return None


@dataclass
class AnalysisReport:
    """Deterministic result of one :func:`run_analysis` call."""

    findings: List[Finding]
    files: int

    @property
    def unsuppressed(self) -> List[Finding]:
        return [f for f in self.findings if not f.suppressed]

    def counts(self) -> Dict[str, int]:
        active = self.unsuppressed
        return {
            "errors": sum(1 for f in active if f.severity == "error"),
            "warnings": sum(1 for f in active if f.severity == "warning"),
            "suppressed": len(self.findings) - len(active),
        }

    def exit_code(self, strict: bool = False) -> int:
        counts = self.counts()
        if counts["errors"] or (strict and counts["warnings"]):
            return 1
        return 0

    def to_json(self) -> str:
        counts = self.counts()
        payload = {
            "version": 1,
            "files": self.files,
            "errors": counts["errors"],
            "warnings": counts["warnings"],
            "suppressed": counts["suppressed"],
            "findings": [
                {
                    "code": f.code,
                    "severity": f.severity,
                    "path": f.path,
                    "line": f.line,
                    "message": f.message,
                    "suppressed": f.suppressed,
                }
                for f in self.findings
            ],
        }
        return json.dumps(payload, indent=2) + "\n"

    def render_human(self) -> str:
        out = [f.render() for f in self.findings]
        counts = self.counts()
        out.append(
            f"{len(self.unsuppressed)} finding(s) "
            f"({counts['errors']} error(s), {counts['warnings']} "
            f"warning(s)), {counts['suppressed']} suppressed, "
            f"{self.files} file(s) checked"
        )
        return "\n".join(out)


# --------------------------------------------------------------------------
# Registry.
# --------------------------------------------------------------------------

_RULES: Dict[str, Rule] = {}


def register_rule(
    code: str,
    checker: Callable[[AnalysisContext], Iterable[Finding]],
    severity: str = "error",
    description: str = "",
) -> None:
    """Register an invariant rule under a stable code.

    Mirrors ``register_backend``/``register_kernel_tier`` — except that
    re-registering an existing code *raises* instead of replacing:
    rule codes appear in ``noqa`` suppressions across the tree, so two
    rules silently sharing a code would make every suppression of one
    also mute the other.

    Raises:
        AnalysisError: duplicate code, malformed code, or unknown
            severity.
    """
    if not _CODE_RE.match(code):
        raise AnalysisError(
            f"malformed rule code {code!r}; expected LETTERS+3 digits "
            "(e.g. RNG001)"
        )
    if severity not in SEVERITIES:
        raise AnalysisError(
            f"unknown severity {severity!r} for rule {code}; expected "
            f"one of {SEVERITIES}"
        )
    if code in _RULES:
        raise AnalysisError(
            f"rule code {code} is already registered "
            f"({_RULES[code].description!r}); codes appear in noqa "
            "suppressions and must stay unique"
        )
    _RULES[code] = Rule(
        code=code, severity=severity, description=description, checker=checker
    )


def unregister_rule(code: str) -> None:
    """Remove a rule (primarily for tests registering throwaways)."""
    _RULES.pop(code, None)


def rule_codes() -> Tuple[str, ...]:
    """Registered rule codes, sorted."""
    return tuple(sorted(_RULES))


def get_rule(code: str) -> Rule:
    """The registered rule for a code (raises on unknown)."""
    try:
        return _RULES[code]
    except KeyError:
        raise AnalysisError(f"unknown rule code {code!r}") from None


# --------------------------------------------------------------------------
# Suppression parsing.
# --------------------------------------------------------------------------


def _parse_suppressions(info: ModuleInfo) -> None:
    """Fill the module's suppression tables from its comments.

    Comments are read with :mod:`tokenize` (not a line regex), so a
    ``# repro: noqa[...]`` inside a string literal is data, not a
    suppression.  A suppression comment on a line of its own applies
    file-wide; trailing a statement it applies to that line only.
    """
    known = set(_RULES)
    try:
        tokens = tokenize.generate_tokens(StringIO(info.source).readline)
        comments = [
            (token.start[0], token.string)
            for token in tokens
            if token.type == tokenize.COMMENT
        ]
    except tokenize.TokenError:  # tolerate odd but parseable sources
        comments = [
            (number, "#" + line.split("#", 1)[1])
            for number, line in enumerate(info.lines, start=1)
            if "#" in line
        ]
    for line_number, comment in comments:
        match = _NOQA_RE.search(comment)
        if match is None:
            continue
        raw = match.group(1)
        if raw is None or not raw.strip():
            info.bad_suppressions.append(
                (line_number,
                 "suppression must name rule codes: use "
                 "'# repro: noqa[CODE]', never a bare noqa")
            )
            continue
        codes = {code.strip() for code in raw.split(",") if code.strip()}
        unknown = sorted(code for code in codes if code not in known)
        if unknown:
            info.bad_suppressions.append(
                (line_number,
                 f"suppression names unknown rule code(s) "
                 f"{', '.join(unknown)}; known codes: "
                 f"{', '.join(rule_codes())}")
            )
            codes -= set(unknown)
        if not codes:
            continue
        stripped = info.lines[line_number - 1].strip()
        if stripped.startswith("#"):
            info.file_suppressions.update(codes)
        else:
            info.line_suppressions.setdefault(line_number, set()).update(codes)


# --------------------------------------------------------------------------
# File walking and the run itself.
# --------------------------------------------------------------------------


def _collect_files(paths: Iterable[str]) -> List[Path]:
    files: List[Path] = []
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            files.extend(
                candidate
                for candidate in sorted(path.rglob("*.py"))
                if "__pycache__" not in candidate.parts
            )
        elif path.is_file():
            files.append(path)
        else:
            raise AnalysisError(f"no such file or directory: {raw}")
    # deterministic order, stable across duplicate path arguments
    unique: Dict[str, Path] = {}
    for candidate in files:
        unique.setdefault(str(candidate), candidate)
    return list(unique.values())


def _load_module(path: Path) -> ModuleInfo:
    source = path.read_text(encoding="utf-8")
    try:
        tree = ast.parse(source, filename=str(path))
    except SyntaxError as exc:
        raise AnalysisError(
            f"{path}:{exc.lineno}: cannot parse: {exc.msg}"
        ) from exc
    return ModuleInfo(
        path=str(path), source=source, lines=source.splitlines(), tree=tree
    )


def run_analysis(
    paths: Iterable[str], codes: Optional[Iterable[str]] = None
) -> AnalysisReport:
    """Run (a subset of) the registered rules over a file set.

    Args:
        paths: files and/or directories (directories walk ``**/*.py``).
        codes: rule codes to run (default: every registered rule).

    Returns a report whose findings are sorted by (path, line, code);
    the analysis itself is deterministic — same tree, same report.
    """
    selected = rule_codes() if codes is None else tuple(codes)
    rules = [get_rule(code) for code in selected]
    modules = [_load_module(path) for path in _collect_files(paths)]
    for info in modules:
        _parse_suppressions(info)
    context = AnalysisContext(modules=modules)

    findings: List[Finding] = []
    for rule in rules:
        for raw in rule.checker(context):
            findings.append(
                Finding(
                    code=rule.code,
                    severity=rule.severity,
                    path=raw.path,
                    line=raw.line,
                    message=raw.message,
                )
            )

    by_path = {info.path: info for info in modules}
    resolved: List[Finding] = []
    for item in findings:
        info = by_path.get(item.path)
        suppressed = bool(
            info is not None
            and (
                item.code in info.file_suppressions
                or item.code in info.line_suppressions.get(item.line, set())
            )
        )
        resolved.append(
            Finding(
                code=item.code,
                severity=item.severity,
                path=item.path,
                line=item.line,
                message=item.message,
                suppressed=suppressed,
            )
        )
    resolved.sort(key=lambda f: (f.path, f.line, f.code, f.message))
    return AnalysisReport(findings=resolved, files=len(modules))


# --------------------------------------------------------------------------
# Shared AST helpers used by the rules.
# --------------------------------------------------------------------------


def import_aliases(tree: ast.Module) -> Dict[str, str]:
    """Local name -> dotted origin for every import in a module.

    ``import numpy as np`` maps ``np -> numpy``; ``from numpy import
    random as npr`` maps ``npr -> numpy.random``.  Rules use this to
    resolve attribute chains to canonical dotted names without
    executing anything.
    """
    aliases: Dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for name in node.names:
                aliases[name.asname or name.name.split(".")[0]] = (
                    name.name if name.asname else name.name.split(".")[0]
                )
        elif isinstance(node, ast.ImportFrom) and node.module and not node.level:
            for name in node.names:
                aliases[name.asname or name.name] = (
                    f"{node.module}.{name.name}"
                )
    return aliases


def dotted_name(node: ast.AST, aliases: Dict[str, str]) -> Optional[str]:
    """Resolve ``Name``/``Attribute`` chains to a dotted origin string.

    ``np.random.seed`` with ``np -> numpy`` resolves to
    ``numpy.random.seed``; unresolvable shapes (calls, subscripts)
    return ``None``.
    """
    parts: List[str] = []
    current = node
    while isinstance(current, ast.Attribute):
        parts.append(current.attr)
        current = current.value
    if not isinstance(current, ast.Name):
        return None
    root = aliases.get(current.id, current.id)
    parts.append(root)
    return ".".join(reversed(parts))


def walk_functions(tree: ast.Module) -> Iterator[ast.AST]:
    """Every function/async-function definition in a module."""
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield node
