"""The built-in invariant rules (see the package docstring for codes).

Each rule is a checker over the whole parsed file set
(:class:`~repro.analysis.core.AnalysisContext`), registered through
:func:`~repro.analysis.core.register_rule` at import time.  Rules are
static and conservative: they flag shapes that *cannot* be correct
under the engine's contracts (ambient RNG, wall-clock data, lambdas
crossing pickle boundaries, unfingerprinted config knobs) and leave
gray areas alone — a deliberate exception is annotated in source with
``# repro: noqa[CODE]`` rather than special-cased here.
"""

from __future__ import annotations

import ast
import re
from pathlib import PurePath
from typing import Dict, Iterator, List, Optional, Sequence, Set, Tuple

from repro.analysis.core import (
    AnalysisContext,
    Finding,
    ModuleInfo,
    dotted_name,
    import_aliases,
    register_rule,
)

# --------------------------------------------------------------------------
# RNG001 — RNG discipline: no ambient random state.
# --------------------------------------------------------------------------

#: Module-level RNG namespaces whose *calls* consume or mutate hidden
#: global state.  Seeded constructors are explicitly allowed: they
#: create threadable generator objects instead of ambient state.
_RNG_ALLOWED = {
    "random": {"Random", "SystemRandom"},
    "numpy.random": {
        "default_rng",
        "Generator",
        "SeedSequence",
        "BitGenerator",
        "PCG64",
        "Philox",
        "MT19937",
    },
}


def _resolved_calls(
    info: ModuleInfo,
) -> Iterator[Tuple[ast.Call, str]]:
    """(call, dotted-origin) pairs for calls on imported names only."""
    aliases = import_aliases(info.tree)
    for node in ast.walk(info.tree):
        if not isinstance(node, ast.Call):
            continue
        parts: List[str] = []
        current: ast.AST = node.func
        while isinstance(current, ast.Attribute):
            parts.append(current.attr)
            current = current.value
        if not isinstance(current, ast.Name) or current.id not in aliases:
            continue
        parts.append(aliases[current.id])
        yield node, ".".join(reversed(parts))


def check_rng_discipline(context: AnalysisContext) -> Iterator[Finding]:
    for info in context.modules:
        for node, dotted in _resolved_calls(info):
            for namespace, allowed in _RNG_ALLOWED.items():
                prefix = namespace + "."
                if not dotted.startswith(prefix):
                    continue
                attr = dotted[len(prefix):]
                if "." in attr or attr in allowed:
                    continue
                yield info.finding(
                    "RNG001",
                    node.lineno,
                    f"ambient RNG call {dotted}() draws from hidden "
                    "module state, so results depend on call order "
                    "across shards; thread a seeded "
                    "numpy.random.Generator (numpy.random.default_rng)"
                    " through the call chain instead",
                )


# --------------------------------------------------------------------------
# NDT001 — wall-clock and other nondeterminism sources in result paths.
# --------------------------------------------------------------------------

#: Calls whose return value differs between bit-identical runs.
#: ``time.monotonic``/``time.perf_counter`` are deliberately absent:
#: measuring durations is fine, *recording wall-clock values as data*
#: is not.
_NONDETERMINISTIC_CALLS = {
    "time.time",
    "time.time_ns",
    "os.urandom",
    "os.getrandom",
    "uuid.uuid1",
    "uuid.uuid4",
    "secrets.token_bytes",
    "secrets.token_hex",
    "secrets.token_urlsafe",
    "secrets.randbits",
    "datetime.datetime.now",
    "datetime.datetime.utcnow",
    "datetime.datetime.today",
    "datetime.date.today",
}


def check_nondeterminism(context: AnalysisContext) -> Iterator[Finding]:
    for info in context.modules:
        for node, dotted in _resolved_calls(info):
            if dotted in _NONDETERMINISTIC_CALLS:
                yield info.finding(
                    "NDT001",
                    node.lineno,
                    f"{dotted}() is a nondeterminism source: its value "
                    "differs between runs that must be bit-identical; "
                    "derive the value from inputs (or annotate a "
                    "deliberate timestamp with a noqa)",
                )
        for node in ast.walk(info.tree):
            if isinstance(node, ast.For) and isinstance(
                node.iter, (ast.Set, ast.SetComp)
            ):
                yield info.finding(
                    "NDT001",
                    node.lineno,
                    "iterating a set literal has hash-seed-dependent "
                    "order; iterate a tuple/list or sorted(...) so "
                    "downstream results keep one canonical order",
                )


# --------------------------------------------------------------------------
# PKL001 — backend-boundary picklability.
# --------------------------------------------------------------------------

#: ``fn``-first call sites that hand the callable to an executor
#: backend (process pool / remote coordinator pickles it).
_BOUNDARY_METHODS = {"submit", "map_shards", "submit_single"}
_BOUNDARY_CLASSMETHODS = {"for_cells", "for_batches"}

#: Constructors whose instances never pickle; capturing one in a
#: closure that crosses a boundary is wrong in every dispatch mode.
_UNPICKLABLE_FACTORIES = {
    "threading.Lock",
    "threading.RLock",
    "threading.Condition",
    "threading.Event",
    "threading.Semaphore",
    "threading.BoundedSemaphore",
    "open",
    "socket.socket",
    "sqlite3.connect",
}


def _boundary_fn_args(tree: ast.Module) -> Iterator[Tuple[ast.Call, ast.AST]]:
    for node in ast.walk(tree):
        if not isinstance(node, ast.Call) or not node.args:
            continue
        func = node.func
        if (
            isinstance(func, ast.Attribute)
            and func.attr in _BOUNDARY_METHODS | _BOUNDARY_CLASSMETHODS
        ):
            yield node, node.args[0]


def _function_parents(
    tree: ast.Module,
) -> Dict[ast.AST, Optional[ast.AST]]:
    """Function-def node -> innermost enclosing function def (or None)."""
    parents: Dict[ast.AST, Optional[ast.AST]] = {}

    def visit(node: ast.AST, enclosing: Optional[ast.AST]) -> None:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                parents[child] = enclosing
                visit(child, child)
            else:
                visit(child, enclosing)

    visit(tree, None)
    return parents


def check_boundary_picklability(context: AnalysisContext) -> Iterator[Finding]:
    for info in context.modules:
        aliases = import_aliases(info.tree)
        parents = _function_parents(info.tree)
        # name -> nested defs carrying it, and per-function suspicious
        # local bindings (name -> factory dotted origin)
        nested_defs: Dict[str, List[ast.AST]] = {}
        for def_node, parent in parents.items():
            if parent is not None:
                nested_defs.setdefault(def_node.name, []).append(def_node)
        suspicious: Dict[str, str] = {}
        for node in ast.walk(info.tree):
            if isinstance(node, ast.Assign) and isinstance(
                node.value, ast.Call
            ):
                origin = dotted_name(node.value.func, aliases)
                if origin in _UNPICKLABLE_FACTORIES:
                    for target in node.targets:
                        if isinstance(target, ast.Name):
                            suspicious[target.id] = origin

        for call, fn_arg in _boundary_fn_args(info.tree):
            if isinstance(fn_arg, ast.Lambda):
                yield info.finding(
                    "PKL001",
                    call.lineno,
                    "a lambda handed to a backend boundary cannot be "
                    "pickled for process/remote dispatch; pass a "
                    "module-level function (cells are documented as "
                    "module-level callables)",
                )
                continue
            if not isinstance(fn_arg, ast.Name):
                continue
            for def_node in nested_defs.get(fn_arg.id, ()):
                captured = sorted(
                    name
                    for name in suspicious
                    if any(
                        isinstance(ref, ast.Name)
                        and ref.id == name
                        and isinstance(ref.ctx, ast.Load)
                        for ref in ast.walk(def_node)
                    )
                )
                if captured:
                    yield info.finding(
                        "PKL001",
                        call.lineno,
                        f"{fn_arg.id}() closes over unpicklable state "
                        f"({', '.join(captured)} = "
                        f"{', '.join(suspicious[c] for c in captured)}"
                        "()); nothing crossing a backend boundary may "
                        "capture locks, open files, sockets, or "
                        "connections",
                    )


# --------------------------------------------------------------------------
# FPR001 — fingerprint completeness for checkpointed config dataclasses.
# --------------------------------------------------------------------------

_FINGERPRINTED_RE = re.compile(
    r"#\s*repro:\s*fingerprinted\[([A-Za-z_][A-Za-z_0-9]*)\]"
)
_NON_TRAJECTORY_RE = re.compile(r"#\s*repro:\s*non-trajectory\[([^\]]*)\]")


def _marker_on(info: ModuleInfo, lineno: int) -> Optional[str]:
    if 1 <= lineno <= len(info.lines):
        match = _FINGERPRINTED_RE.search(info.lines[lineno - 1])
        if match:
            return match.group(1)
    return None


def _non_trajectory_reason(info: ModuleInfo, lineno: int) -> Optional[str]:
    """The ``non-trajectory`` reason on a field's line or the line above."""
    for candidate in (lineno, lineno - 1):
        if 1 <= candidate <= len(info.lines):
            match = _NON_TRAJECTORY_RE.search(info.lines[candidate - 1])
            if match:
                return match.group(1).strip()
    return None


def _declared_fields(
    info: ModuleInfo, declaration: str
) -> Optional[Tuple[int, Tuple[str, ...]]]:
    """(line, names) of ``DECLARATION = ("field", ...)`` at module level."""
    for node in info.tree.body:
        if (
            isinstance(node, ast.Assign)
            and len(node.targets) == 1
            and isinstance(node.targets[0], ast.Name)
            and node.targets[0].id == declaration
            and isinstance(node.value, (ast.Tuple, ast.List))
        ):
            names = []
            for element in node.value.elts:
                if not (
                    isinstance(element, ast.Constant)
                    and isinstance(element.value, str)
                ):
                    return None
                names.append(element.value)
            return node.lineno, tuple(names)
    return None


def _is_classvar(annotation: ast.AST) -> bool:
    target = annotation
    if isinstance(target, ast.Subscript):
        target = target.value
    return (
        isinstance(target, ast.Name) and target.id == "ClassVar"
    ) or (
        isinstance(target, ast.Attribute) and target.attr == "ClassVar"
    )


def check_fingerprint_completeness(
    context: AnalysisContext,
) -> Iterator[Finding]:
    for info in context.modules:
        for node in ast.walk(info.tree):
            if not isinstance(node, ast.ClassDef):
                continue
            declaration = _marker_on(info, node.lineno)
            if declaration is None:
                continue
            declared = _declared_fields(info, declaration)
            if declared is None:
                yield info.finding(
                    "FPR001",
                    node.lineno,
                    f"fingerprinted config {node.name} names "
                    f"{declaration}, but the module has no "
                    f"{declaration} = (\"field\", ...) tuple of string "
                    "field names at module level",
                )
                continue
            decl_line, declared_names = declared
            fields: List[Tuple[str, int]] = []
            for stmt in node.body:
                if (
                    isinstance(stmt, ast.AnnAssign)
                    and isinstance(stmt.target, ast.Name)
                    and not stmt.target.id.startswith("_")
                    and not _is_classvar(stmt.annotation)
                ):
                    fields.append((stmt.target.id, stmt.lineno))
            field_names = {name for name, _line in fields}
            for name, line in fields:
                in_declaration = name in declared_names
                reason = _non_trajectory_reason(info, line)
                if in_declaration and reason is not None:
                    yield info.finding(
                        "FPR001",
                        line,
                        f"field {name} of {node.name} is both in "
                        f"{declaration} and annotated non-trajectory; "
                        "a knob either shapes the search trajectory or "
                        "it does not — pick one",
                    )
                elif not in_declaration and reason is None:
                    yield info.finding(
                        "FPR001",
                        line,
                        f"field {name} of fingerprinted config "
                        f"{node.name} is neither listed in "
                        f"{declaration} (so it never reaches "
                        "checkpoint_fingerprint — a resumed search "
                        "would silently splice two settings) nor "
                        "annotated '# repro: non-trajectory[reason]'",
                    )
                elif not in_declaration and reason == "":
                    yield info.finding(
                        "FPR001",
                        line,
                        f"field {name} of {node.name}: the "
                        "non-trajectory annotation must carry a "
                        "reason, e.g. '# repro: non-trajectory["
                        "execution policy, bit-identical results]'",
                    )
            for name in declared_names:
                if name not in field_names:
                    yield info.finding(
                        "FPR001",
                        decl_line,
                        f"{declaration} lists {name!r}, which is not a "
                        f"field of {node.name} — deleting or renaming "
                        "a fingerprinted knob must update the "
                        "trajectory declaration (old checkpoints then "
                        "refuse resume, as intended)",
                    )


# --------------------------------------------------------------------------
# KRN001 — kernel-tier parity.
# --------------------------------------------------------------------------

#: The full kernel set every non-reference tier must implement, with
#: the positional arity of each kernel callable (see
#: :class:`repro.engine.kernels.KernelImpl`).
_KERNEL_SET = {"simulate_tables": 2, "sweep_ge": 2, "lut_tile": 4}
_KERNEL_META = {"name", "version"}


def check_kernel_parity(context: AnalysisContext) -> Iterator[Finding]:
    for info in context.modules:
        aliases = import_aliases(info.tree)
        defs: Dict[str, ast.AST] = {
            node.name: node
            for node in ast.walk(info.tree)
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
        }
        for node in ast.walk(info.tree):
            if not isinstance(node, ast.Call):
                continue
            origin = dotted_name(node.func, aliases)
            if origin is None or origin.split(".")[-1] != "KernelImpl":
                continue
            if node.args:
                yield info.finding(
                    "KRN001",
                    node.lineno,
                    "KernelImpl fields must be passed by keyword so "
                    "tier parity stays statically checkable",
                )
            provided: Set[str] = set()
            for keyword in node.keywords:
                if keyword.arg is None:
                    yield info.finding(
                        "KRN001",
                        node.lineno,
                        "KernelImpl(**kwargs) hides the kernel set "
                        "from the parity check; pass fields explicitly",
                    )
                    provided = set()
                    break
                if keyword.arg in _KERNEL_SET:
                    provided.add(keyword.arg)
                elif keyword.arg not in _KERNEL_META:
                    yield info.finding(
                        "KRN001",
                        node.lineno,
                        f"KernelImpl has no kernel field "
                        f"{keyword.arg!r}; known kernels: "
                        f"{sorted(_KERNEL_SET)}",
                    )
            if provided and provided != set(_KERNEL_SET):
                missing = sorted(set(_KERNEL_SET) - provided)
                yield info.finding(
                    "KRN001",
                    node.lineno,
                    f"kernel tier implements {sorted(provided)} but "
                    f"not {missing}: every tier must implement the "
                    "full kernel set, or callers silently fall to "
                    "numpy mid-pipeline and benchmark tiers stop "
                    "being comparable",
                )
            for keyword in node.keywords:
                if keyword.arg in _KERNEL_SET and isinstance(
                    keyword.value, ast.Name
                ):
                    target = defs.get(keyword.value.id)
                    if target is None:
                        continue
                    arity = len(target.args.posonlyargs) + len(
                        target.args.args
                    )
                    expected = _KERNEL_SET[keyword.arg]
                    if arity != expected:
                        yield info.finding(
                            "KRN001",
                            target.lineno,
                            f"kernel {keyword.arg} takes {arity} "
                            f"positional argument(s), the reference "
                            f"signature takes {expected}; mismatched "
                            "tiers cannot be swapped bit-identically",
                        )


# --------------------------------------------------------------------------
# DEP001 — deprecation hygiene: no callers of the map-era shims.
# --------------------------------------------------------------------------

#: Factory shapes that produce a GridRunner (for resolving ``x.map``).
_RUNNER_FACTORIES = {"GridRunner", "grid_runner", "accuracy_runner"}


def _grid_runner_names(tree: ast.Module) -> Set[str]:
    names: Set[str] = set()
    for node in ast.walk(tree):
        if not (
            isinstance(node, ast.Assign) and isinstance(node.value, ast.Call)
        ):
            continue
        func = node.value.func
        produced = (
            isinstance(func, ast.Name) and func.id in _RUNNER_FACTORIES
        ) or (
            isinstance(func, ast.Attribute) and func.attr in _RUNNER_FACTORIES
        )
        if produced:
            for target in node.targets:
                if isinstance(target, ast.Name):
                    names.add(target.id)
    return names


def check_deprecated_shims(context: AnalysisContext) -> Iterator[Finding]:
    for info in context.modules:
        runner_names = _grid_runner_names(info.tree)
        for node in ast.walk(info.tree):
            if not (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
            ):
                continue
            attr = node.func.attr
            value = node.func.value
            if attr == "map_batches":
                yield info.finding(
                    "DEP001",
                    node.lineno,
                    "GridRunner.map_batches is a deprecated shim; use "
                    "runner.run(ExecutionPlan.for_batches(fn, items, "
                    "extra))",
                )
            elif attr == "map":
                from_runner = (
                    isinstance(value, ast.Name) and value.id in runner_names
                ) or (
                    isinstance(value, ast.Call)
                    and (
                        (
                            isinstance(value.func, ast.Name)
                            and value.func.id in _RUNNER_FACTORIES
                        )
                        or (
                            isinstance(value.func, ast.Attribute)
                            and value.func.attr in _RUNNER_FACTORIES
                        )
                    )
                )
                if from_runner:
                    yield info.finding(
                        "DEP001",
                        node.lineno,
                        "GridRunner.map is a deprecated shim; use "
                        "runner.run(ExecutionPlan.for_cells(fn, cells))",
                    )


# --------------------------------------------------------------------------
# TMO001 — bounded blocking in engine code: every wait has a timeout.
# --------------------------------------------------------------------------

#: Socket constructors that accept (and should get) a dial timeout.
_DIAL_CALLS = {"socket.create_connection"}


def _in_engine_scope(info: ModuleInfo) -> bool:
    """True for modules under an ``engine`` directory.

    The engine is the layer where a hung call becomes a hung fleet —
    a worker blocked on a dead coordinator, a session blocked on a
    lost notify.  Everywhere else, unbounded waits are ordinary.
    """
    return "engine" in PurePath(info.path).parts


def check_bounded_blocking(context: AnalysisContext) -> Iterator[Finding]:
    for info in context.modules:
        if not _in_engine_scope(info):
            continue
        aliases = import_aliases(info.tree)
        for node in ast.walk(info.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if (
                isinstance(func, ast.Attribute)
                and func.attr == "wait"
                and not node.args
                and not any(k.arg == "timeout" for k in node.keywords)
            ):
                yield info.finding(
                    "TMO001",
                    node.lineno,
                    ".wait() without a timeout blocks forever on a "
                    "lost notify or a dead peer — a hung worker "
                    "becomes a hung engine; pass a timeout and "
                    "re-check the predicate in a loop (or annotate a "
                    "deliberately unbounded wait with a noqa)",
                )
                continue
            if (
                isinstance(func, ast.Attribute)
                and func.attr == "settimeout"
                and node.args
                and isinstance(node.args[0], ast.Constant)
                and node.args[0].value is None
            ):
                yield info.finding(
                    "TMO001",
                    node.lineno,
                    "settimeout(None) switches the socket to unbounded "
                    "blocking; keep a finite timeout (or annotate the "
                    "deliberate exception with a noqa explaining why "
                    "this socket may block forever)",
                )
                continue
            dotted = dotted_name(func, aliases)
            if dotted in _DIAL_CALLS:
                if len(node.args) < 2 and not any(
                    k.arg == "timeout" for k in node.keywords
                ):
                    yield info.finding(
                        "TMO001",
                        node.lineno,
                        f"{dotted}() without a timeout can hang the "
                        "dial indefinitely on a black-holed address; "
                        "pass timeout= so a dead coordinator costs one "
                        "bounded attempt, not the whole worker",
                    )


# --------------------------------------------------------------------------
# SUP001 — suppression hygiene.
# --------------------------------------------------------------------------


def check_suppression_hygiene(context: AnalysisContext) -> Iterator[Finding]:
    for info in context.modules:
        for line, problem in info.bad_suppressions:
            yield info.finding("SUP001", line, problem)


# --------------------------------------------------------------------------
# Registration (import side effect, mirroring the backend registries).
# --------------------------------------------------------------------------

_BUILTIN_RULES: Sequence[Tuple[str, object, str, str]] = (
    (
        "RNG001",
        check_rng_discipline,
        "error",
        "no ambient random.* / numpy.random.* state; thread seeded "
        "Generator objects",
    ),
    (
        "NDT001",
        check_nondeterminism,
        "error",
        "no wall-clock, urandom, uuid, or set-iteration values in "
        "result paths",
    ),
    (
        "PKL001",
        check_boundary_picklability,
        "error",
        "callables crossing submit/map_shards/ExecutionPlan boundaries "
        "must be picklable (no lambdas, no captured locks/files)",
    ),
    (
        "FPR001",
        check_fingerprint_completeness,
        "error",
        "every field of a fingerprinted config dataclass is declared "
        "trajectory or annotated non-trajectory",
    ),
    (
        "KRN001",
        check_kernel_parity,
        "error",
        "every compiled kernel tier implements the full kernel set "
        "with reference signatures",
    ),
    (
        "DEP001",
        check_deprecated_shims,
        "error",
        "no callers of the deprecated GridRunner.map/map_batches shims",
    ),
    (
        "TMO001",
        check_bounded_blocking,
        "error",
        "engine/ code never blocks unboundedly: .wait() calls, dials, "
        "and socket modes all carry explicit timeouts",
    ),
    (
        "SUP001",
        check_suppression_hygiene,
        "error",
        "every '# repro: noqa' suppression names known rule codes",
    ),
)


def register_builtin_rules() -> None:
    """Register the built-in rules (idempotent)."""
    from repro.analysis.core import rule_codes

    registered = set(rule_codes())
    for code, checker, severity, description in _BUILTIN_RULES:
        if code not in registered:
            register_rule(code, checker, severity, description)


register_builtin_rules()
