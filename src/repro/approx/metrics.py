"""Exhaustive error metrics for approximate multipliers.

For 8x8 multipliers the full input space is 65536 cases, so every metric
here is *exact* — no sampling noise anywhere in the flow.  Definitions
follow the approximate-arithmetic literature (e.g. EvoApprox8b):

========  ==================================================================
ER        error rate: fraction of inputs with a wrong result
MED       mean error distance: E[|approx - exact|]
NMED      MED normalised by the maximum exact product
MRED      mean relative error distance: E[|err| / max(exact, 1)]
WCE       worst-case error distance
MSE       mean squared error
bias      mean signed error E[approx - exact]
========  ==================================================================

Metrics can be weighted by an operand distribution.  DNN operands are not
uniform (weights cluster near zero), and the paper's flow selects
multipliers by their *DNN* impact; the accuracy model uses the weighted
moments for its error-propagation estimates.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

import numpy as np

from repro.errors import SimulationError

#: Memoised exact-result and uniform case-weight tables.  The step-1
#: pruning search calls :func:`compute_error_metrics` for thousands of
#: candidate multipliers with the same operand widths; rebuilding the
#: 65536-entry product table and the tiled weight vector per candidate
#: used to dominate the metric cost.  Cached arrays are returned
#: read-only so a caller cannot corrupt later computations.
_EXACT_PRODUCTS: Dict[Tuple[int, int], np.ndarray] = {}
_EXACT_SUMS: Dict[Tuple[int, int], np.ndarray] = {}
_UNIFORM_WEIGHTS: Dict[Tuple[int, int], np.ndarray] = {}


@dataclass(frozen=True)
class ErrorMetrics:
    """Exhaustive error statistics of an approximate multiplier.

    All statistics are computed over the full input cross-product,
    optionally weighted by an operand probability distribution.
    """

    error_rate: float
    med: float
    nmed: float
    mred: float
    wce: int
    mse: float
    bias: float
    variance: float

    @property
    def is_exact(self) -> bool:
        """True when the circuit matches the exact multiplier everywhere."""
        return self.wce == 0

    def summary(self) -> str:
        """One-line human-readable summary."""
        return (
            f"ER={self.error_rate:.3f} NMED={self.nmed:.2e} "
            f"MRED={self.mred:.2e} WCE={self.wce}"
        )


def exact_products(a_width: int, b_width: int) -> np.ndarray:
    """Exact product table indexed by ``a + (b << a_width)``.

    Memoised per width pair; the returned array is read-only (copy it
    before mutating).
    """
    key = (a_width, b_width)
    table = _EXACT_PRODUCTS.get(key)
    if table is None:
        cases = np.arange(1 << (a_width + b_width), dtype=np.int64)
        a = cases & ((1 << a_width) - 1)
        b = cases >> a_width
        table = a * b
        table.setflags(write=False)
        _EXACT_PRODUCTS[key] = table
    return table


def exact_sums(a_width: int, b_width: int) -> np.ndarray:
    """Exact sum table indexed by ``a + (b << a_width)``.

    Memoised per width pair; the returned array is read-only (copy it
    before mutating).
    """
    key = (a_width, b_width)
    table = _EXACT_SUMS.get(key)
    if table is None:
        cases = np.arange(1 << (a_width + b_width), dtype=np.int64)
        a = cases & ((1 << a_width) - 1)
        b = cases >> a_width
        table = a + b
        table.setflags(write=False)
        _EXACT_SUMS[key] = table
    return table


def compute_error_metrics(
    table: np.ndarray,
    a_width: int,
    b_width: int,
    a_probabilities: Optional[np.ndarray] = None,
    b_probabilities: Optional[np.ndarray] = None,
    reference: Optional[np.ndarray] = None,
) -> ErrorMetrics:
    """Compute :class:`ErrorMetrics` for an approximate result table.

    Args:
        table: approximate results indexed by ``a + (b << a_width)``.
        a_width: bit width of operand A.
        b_width: bit width of operand B.
        a_probabilities: optional probability of each A value
            (length ``2**a_width``; normalised internally).
        b_probabilities: optional probability of each B value.
        reference: exact results per case; defaults to the exact
            product table (pass :func:`exact_sums` output for adders).

    Returns:
        Exhaustive (optionally operand-weighted) error statistics.
    """
    n_cases = 1 << (a_width + b_width)
    if table.shape != (n_cases,):
        raise SimulationError(
            f"table has shape {table.shape}, expected ({n_cases},) for "
            f"{a_width}x{b_width} operands"
        )

    if reference is None:
        exact = exact_products(a_width, b_width)
    else:
        exact = np.asarray(reference, dtype=np.int64)
        if exact.shape != (n_cases,):
            raise SimulationError(
                f"reference has shape {exact.shape}, expected ({n_cases},)"
            )
    signed_error = table.astype(np.int64) - exact
    abs_error = np.abs(signed_error)

    weights = _case_weights(a_width, b_width, a_probabilities, b_probabilities)

    max_product = float(exact.max()) if exact.max() > 0 else 1.0
    relative = abs_error / np.maximum(exact, 1)

    error_rate = float(np.sum((abs_error > 0) * weights))
    med = float(np.sum(abs_error * weights))
    mred = float(np.sum(relative * weights))
    mse = float(np.sum((signed_error.astype(np.float64) ** 2) * weights))
    bias = float(np.sum(signed_error * weights))

    return ErrorMetrics(
        error_rate=error_rate,
        med=med,
        nmed=med / max_product,
        mred=mred,
        wce=int(abs_error.max()),
        mse=mse,
        bias=bias,
        variance=mse - bias * bias,
    )


def _case_weights(
    a_width: int,
    b_width: int,
    a_probabilities: Optional[np.ndarray],
    b_probabilities: Optional[np.ndarray],
) -> np.ndarray:
    """Per-case probability weights over the exhaustive input space."""
    n_a = 1 << a_width
    n_b = 1 << b_width

    if a_probabilities is None and b_probabilities is None:
        # the uniform weights every pruning candidate shares: memoise
        # the tiled vector once per width pair (read-only, see above)
        key = (a_width, b_width)
        weights = _UNIFORM_WEIGHTS.get(key)
        if weights is None:
            a_p = _normalised(None, n_a, "a_probabilities")
            b_p = _normalised(None, n_b, "b_probabilities")
            weights = np.tile(a_p, n_b) * np.repeat(b_p, n_a)
            weights.setflags(write=False)
            _UNIFORM_WEIGHTS[key] = weights
        return weights

    a_p = _normalised(a_probabilities, n_a, "a_probabilities")
    b_p = _normalised(b_probabilities, n_b, "b_probabilities")
    # case index = a + (b << a_width): A varies fastest
    return np.tile(a_p, n_b) * np.repeat(b_p, n_a)


def uniform_case_weights(a_width: int, b_width: int) -> np.ndarray:
    """The memoised uniform per-case weights (read-only).

    Exactly the weights :func:`compute_error_metrics` applies when no
    operand distribution is given; the population-batched pruning
    evaluator shares them so batched error moments use the identical
    per-case factors.
    """
    return _case_weights(a_width, b_width, None, None)


def _normalised(
    probabilities: Optional[np.ndarray], expected_len: int, name: str
) -> np.ndarray:
    if probabilities is None:
        return np.full(expected_len, 1.0 / expected_len)
    p = np.asarray(probabilities, dtype=np.float64)
    if p.shape != (expected_len,):
        raise SimulationError(
            f"{name} has shape {p.shape}, expected ({expected_len},)"
        )
    if np.any(p < 0):
        raise SimulationError(f"{name} contains negative probabilities")
    total = p.sum()
    if total <= 0:
        raise SimulationError(f"{name} sums to {total}; must be positive")
    return p / total


def gaussian_operand_distribution(
    width: int, sigma_fraction: float = 0.25
) -> np.ndarray:
    """Zero-centred magnitude distribution typical of DNN tensors.

    Quantised DNN weights/activations concentrate near zero; this helper
    returns a half-Gaussian over operand magnitudes used as the default
    DNN-aware weighting in the accuracy model.

    Args:
        width: operand bit width.
        sigma_fraction: standard deviation as a fraction of full scale.
    """
    n = 1 << width
    values = np.arange(n, dtype=np.float64)
    sigma = max(sigma_fraction * (n - 1), 1e-9)
    p = np.exp(-0.5 * (values / sigma) ** 2)
    return p / p.sum()
