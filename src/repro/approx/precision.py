"""Precision scaling: operand LSB truncation at the netlist level.

Truncating the ``k`` least-significant bits of an operand removes every
partial product that depends on them; after constant propagation the
multiplier physically shrinks (fewer AND gates, shorter compressor
columns), which is exactly the area-saving mechanism the paper pairs
with gate-level pruning.

The circuit interface is preserved: the truncated input pins still
exist, they are simply ignored internally — the netlist consumes a
constant 0 in their place.  This keeps the PE datapath unchanged.
"""

from __future__ import annotations

from repro.circuits.netlist import Netlist
from repro.circuits.synthesis import ArithmeticCircuit, make_multiplier
from repro.circuits.transform import simplify
from repro.errors import SynthesisError


def truncate_inputs(circuit: ArithmeticCircuit, trunc_a: int, trunc_b: int) -> ArithmeticCircuit:
    """Rewire the lowest operand bits to constant 0 and simplify.

    Args:
        circuit: exact (or already approximate) multiplier circuit.
        trunc_a: number of LSBs of operand A to drop.
        trunc_b: number of LSBs of operand B to drop.

    Returns:
        A new circuit with identical interface whose function is
        ``(a & ~mask_a) * (b & ~mask_b)``.
    """
    if trunc_a < 0 or trunc_b < 0:
        raise SynthesisError(
            f"truncation counts must be non-negative, got {trunc_a}, {trunc_b}"
        )
    if trunc_a >= circuit.a_width or trunc_b >= circuit.b_width:
        raise SynthesisError(
            f"cannot truncate {trunc_a}/{trunc_b} bits of a "
            f"{circuit.a_width}x{circuit.b_width} multiplier"
        )
    if trunc_a == 0 and trunc_b == 0:
        return circuit

    victims = set(circuit.a_wires[:trunc_a]) | set(circuit.b_wires[:trunc_b])
    source = circuit.netlist
    rewired = Netlist(
        name=f"{source.name}_t{trunc_a}{trunc_b}",
        inputs=list(source.inputs),
        outputs=list(source.outputs),
        gates={},
        constants=dict(source.constants),
    )
    zero = rewired.fresh_wire("tz")
    rewired.tie_constant(zero, 0)
    for out_wire, gate in source.gates.items():
        new_inputs = tuple(zero if w in victims else w for w in gate.inputs)
        rewired.gates[out_wire] = gate.with_inputs(new_inputs)
    # outputs that directly alias a truncated input become constant 0
    rewired.outputs = [zero if w in victims else w for w in rewired.outputs]

    return circuit.with_netlist(simplify(rewired))


def precision_scaled_multiplier(
    width: int = 8,
    trunc_a: int = 0,
    trunc_b: int = 0,
    kind: str = "wallace",
) -> ArithmeticCircuit:
    """Generate an operand-truncated multiplier from scratch.

    Args:
        width: operand width of the base multiplier.
        trunc_a: LSBs of operand A ignored by the hardware.
        trunc_b: LSBs of operand B ignored by the hardware.
        kind: base multiplier family (``array``/``wallace``/``dadda``).
    """
    base = make_multiplier(width, width, kind=kind)
    return truncate_inputs(base, trunc_a, trunc_b)
