"""NSGA-II multi-objective optimiser.

A compact, deterministic implementation of Deb's NSGA-II used to explore
the (area, error) space of pruned multipliers.  The implementation is
generic over genomes: callers supply ``evaluate``, ``random_genome``,
``mutate`` and ``crossover`` callables, so the same engine also serves
the ablation benchmarks.

The module-level helpers (:func:`dominates`,
:func:`fast_non_dominated_sort`, :func:`crowding_distance`,
:func:`pareto_front`) are the pure-Python *reference* implementations;
the optimiser itself runs on the numpy-vectorized equivalents in
:mod:`repro.engine.vectorized`, which the property tests hold to exact
agreement with the reference.

All objectives are minimised.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Hashable, List, Optional, Sequence, Tuple

import numpy as np

from repro.engine.checkpoint import CheckpointStore, restore_rng_state
from repro.engine.population import EngineConfig, PopulationEvaluator
from repro.engine.vectorized import (
    crowding_distance_np,
    fast_non_dominated_sort_np,
    pareto_front_np,
    ranks_and_crowding,
    uniform_crossover,
)
from repro.errors import CheckpointError, OptimizationError

Genome = Tuple[int, ...]
Objectives = Tuple[float, ...]


#: Trajectory declaration for :class:`Nsga2Config` (see the FPR001
#: rule in :mod:`repro.analysis`): all five fields shape the search
#: trajectory and must feed the checkpoint fingerprint via
#: :func:`repro.engine.checkpoint.trajectory_parts`.
NSGA2_TRAJECTORY_FIELDS = (
    "population_size",
    "generations",
    "crossover_rate",
    "mutation_rate",
    "seed",
)


@dataclass(frozen=True)
class Nsga2Config:  # repro: fingerprinted[NSGA2_TRAJECTORY_FIELDS]
    """NSGA-II hyper-parameters.

    Every field is trajectory-determining
    (``NSGA2_TRAJECTORY_FIELDS``): changing any of them must refuse
    to resume an old checkpoint.

    Attributes:
        population_size: individuals per generation (even, >= 4).
        generations: number of evolution steps.
        crossover_rate: probability of uniform crossover per pair.
        mutation_rate: per-gene flip probability (defaults to 1/length
            when None).
        seed: RNG seed; identical seeds give identical runs.
    """

    population_size: int = 32
    generations: int = 24
    crossover_rate: float = 0.9
    mutation_rate: float | None = None
    seed: int = 0

    def __post_init__(self) -> None:
        if self.population_size < 4 or self.population_size % 2:
            raise OptimizationError(
                f"population_size must be even and >= 4, got {self.population_size}"
            )
        if self.generations < 1:
            raise OptimizationError(
                f"generations must be >= 1, got {self.generations}"
            )
        if not 0.0 <= self.crossover_rate <= 1.0:
            raise OptimizationError(
                f"crossover_rate must be in [0, 1], got {self.crossover_rate}"
            )


def dominates(a: Objectives, b: Objectives) -> bool:
    """True if ``a`` Pareto-dominates ``b`` (minimisation)."""
    return all(x <= y for x, y in zip(a, b)) and any(x < y for x, y in zip(a, b))


def fast_non_dominated_sort(objectives: Sequence[Objectives]) -> List[List[int]]:
    """Partition indices into Pareto fronts (front 0 = non-dominated)."""
    n = len(objectives)
    dominated_by: List[List[int]] = [[] for _ in range(n)]
    domination_count = [0] * n
    fronts: List[List[int]] = [[]]

    for i in range(n):
        for j in range(i + 1, n):
            if dominates(objectives[i], objectives[j]):
                dominated_by[i].append(j)
                domination_count[j] += 1
            elif dominates(objectives[j], objectives[i]):
                dominated_by[j].append(i)
                domination_count[i] += 1
    for i in range(n):
        if domination_count[i] == 0:
            fronts[0].append(i)

    current = 0
    while fronts[current]:
        next_front: List[int] = []
        for i in fronts[current]:
            for j in dominated_by[i]:
                domination_count[j] -= 1
                if domination_count[j] == 0:
                    next_front.append(j)
        current += 1
        fronts.append(next_front)
    fronts.pop()  # last front is always empty
    return fronts


def crowding_distance(objectives: Sequence[Objectives], front: Sequence[int]) -> Dict[int, float]:
    """Crowding distance of each index within one front."""
    distance = {i: 0.0 for i in front}
    if len(front) <= 2:
        return {i: float("inf") for i in front}
    n_objectives = len(objectives[front[0]])
    for m in range(n_objectives):
        ordered = sorted(front, key=lambda i, m=m: objectives[i][m])
        lo = objectives[ordered[0]][m]
        hi = objectives[ordered[-1]][m]
        distance[ordered[0]] = float("inf")
        distance[ordered[-1]] = float("inf")
        if hi == lo:
            continue
        for k in range(1, len(ordered) - 1):
            gap = objectives[ordered[k + 1]][m] - objectives[ordered[k - 1]][m]
            distance[ordered[k]] += gap / (hi - lo)
    return distance


def pareto_front(points: Sequence[Tuple[Hashable, Objectives]]) -> List[Tuple[Hashable, Objectives]]:
    """Filter (item, objectives) pairs down to the non-dominated set.

    Ties (identical objective vectors) keep the first occurrence only.
    """
    result: List[Tuple[Hashable, Objectives]] = []
    seen: set = set()
    for item, obj in points:
        if obj in seen:
            continue
        if any(dominates(other, obj) for _, other in points):
            continue
        seen.add(obj)
        result.append((item, obj))
    return result


class Nsga2:
    """Generic NSGA-II driver.

    Args:
        evaluate: genome -> objective tuple (minimised). Results are
            memoised by genome, so re-visited genomes cost nothing.
        random_genome: rng -> fresh random genome.
        config: hyper-parameters.
        mutate: optional custom mutation (default: per-gene bit flip).
        crossover: optional custom crossover (default: uniform).
        engine: population-evaluation policy; defaults to the serial
            reference path.  Thread/process fan-out changes when cache
            misses are computed, never the returned front.
        batch_evaluate: optional genomes -> objectives fast path (e.g.
            the population-batched pruning evaluator).  Must return
            objectives bit-identical to mapping ``evaluate``; selected
            by engine modes ``batch`` and ``auto``.
        checkpoint: optional store snapshotting population, scores,
            the objective memo, and the exact RNG state after every
            generation (crash-safe atomic writes).
        resume_from: optional store to resume a killed run from; a
            matching snapshot restores the loop exactly, so the final
            front is bit-identical to an uninterrupted run.  Typically
            the same store as ``checkpoint``.
    """

    def __init__(
        self,
        evaluate: Callable[[Genome], Objectives],
        random_genome: Callable[[np.random.Generator], Genome],
        config: Nsga2Config | None = None,
        mutate: Callable[[Genome, np.random.Generator], Genome] | None = None,
        crossover: Callable[[Genome, Genome, np.random.Generator], Genome] | None = None,
        engine: Optional[EngineConfig] = None,
        batch_evaluate: Optional[
            Callable[[Sequence[Genome]], Sequence[Objectives]]
        ] = None,
        checkpoint: Optional[CheckpointStore] = None,
        resume_from: Optional[CheckpointStore] = None,
    ):
        self.config = config or Nsga2Config()
        self.checkpoint = checkpoint
        self.resume_from = resume_from
        self._evaluate_fn = evaluate
        self._random_genome = random_genome
        self._mutate_fn = mutate or self._default_mutate
        self._crossover_fn = crossover or self._default_crossover
        self._cache: Dict[Genome, Objectives] = {}
        self._batch_fn = batch_evaluate
        self._population_evaluator = PopulationEvaluator(
            self._evaluate,
            batch_evaluate=(
                None if batch_evaluate is None else self._batch_evaluate
            ),
            config=engine or EngineConfig(mode="serial"),
            store=self._record_external,
        )

    @property
    def evaluations(self) -> int:
        """Distinct genomes scored (derived, so thread-mode safe)."""
        return len(self._cache)

    # -- operators -----------------------------------------------------

    def _default_mutate(self, genome: Genome, rng: np.random.Generator) -> Genome:
        """Per-gene bit flip, vectorized (one RNG draw, as before)."""
        rate = self.config.mutation_rate
        if rate is None:
            rate = 1.0 / max(len(genome), 1)
        flips = rng.random(len(genome)) < rate
        genes = np.asarray(genome, dtype=np.int64)
        return tuple(int(g) for g in np.where(flips, 1 - genes, genes))

    @staticmethod
    def _default_crossover(
        a: Genome, b: Genome, rng: np.random.Generator
    ) -> Genome:
        """Uniform crossover (one RNG draw, as before)."""
        return uniform_crossover(a, b, rng)

    def _evaluate(self, genome: Genome) -> Objectives:
        cached = self._cache.get(genome)
        if cached is not None:
            return cached
        objectives = tuple(float(v) for v in self._evaluate_fn(genome))
        self._cache[genome] = objectives
        return objectives

    def _batch_evaluate(self, genomes: Sequence[Genome]) -> List[Objectives]:
        """Coerce the batch fast path exactly like :meth:`_evaluate`."""
        assert self._batch_fn is not None
        return [
            tuple(float(v) for v in objectives)
            for objectives in self._batch_fn(genomes)
        ]

    def _record_external(self, genome: Genome, objectives: Objectives) -> None:
        """Backfill the memo for results computed out-of-process."""
        self._cache.setdefault(genome, objectives)

    # -- main loop -------------------------------------------------------

    def run(self) -> List[Tuple[Genome, Objectives]]:
        """Evolve and return the final non-dominated set (sorted)."""
        cfg = self.config
        rng = np.random.default_rng(cfg.seed)

        state = (
            self.resume_from.load(algorithm="nsga2")
            if self.resume_from is not None
            else None
        )
        if state is not None:
            payload = state.payload
            if payload["config"] != cfg:
                raise CheckpointError(
                    f"checkpoint {self.resume_from.path} was written under "
                    f"{payload['config']}, cannot resume with {cfg}"
                )
            population = list(payload["population"])
            scores = list(payload["scores"])
            # restoring the memo keeps the evaluation count — and any
            # re-visited genome's objectives — identical to a run that
            # never crashed
            for genome, objectives in payload["cache"]:
                self._cache.setdefault(genome, objectives)
            start_generation = state.generation
            restore_rng_state(rng, state.rng_state)
        else:
            population = [
                self._random_genome(rng) for _ in range(cfg.population_size)
            ]
            scores = self._population_evaluator(population)
            start_generation = 0
            self._save(0, rng, population, scores)

        for generation in range(start_generation, cfg.generations):
            offspring = self._make_offspring(population, scores, rng)
            combined = population + offspring
            combined_scores = scores + self._population_evaluator(offspring)
            population, scores = self._select_survivors(
                combined, combined_scores, cfg.population_size
            )
            self._save(generation + 1, rng, population, scores)

        front = pareto_front_np(list(zip(population, scores)))
        front.sort(key=lambda item: item[1])
        return [(g, obj) for g, obj in front]  # type: ignore[misc]

    def _save(
        self,
        generation: int,
        rng: np.random.Generator,
        population: List[Genome],
        scores: List[Objectives],
    ) -> None:
        """Snapshot the complete loop state after a finished generation."""
        if self.checkpoint is None:
            return
        self.checkpoint.save(
            algorithm="nsga2",
            generation=generation,
            rng=rng,
            payload={
                "config": self.config,
                "population": list(population),
                "scores": list(scores),
                "cache": sorted(self._cache.items()),
            },
        )

    def _make_offspring(
        self,
        population: List[Genome],
        scores: List[Objectives],
        rng: np.random.Generator,
    ) -> List[Genome]:
        _, rank, crowd = ranks_and_crowding(scores)

        def tournament() -> Genome:
            i, j = rng.integers(0, len(population), size=2)
            if rank[i] != rank[j]:
                return population[i if rank[i] < rank[j] else j]
            return population[i if crowd[i] >= crowd[j] else j]

        offspring: List[Genome] = []
        while len(offspring) < len(population):
            mother, father = tournament(), tournament()
            if rng.random() < self.config.crossover_rate:
                child = self._crossover_fn(mother, father, rng)
            else:
                child = mother
            offspring.append(self._mutate_fn(child, rng))
        return offspring

    @staticmethod
    def _select_survivors(
        population: List[Genome],
        scores: List[Objectives],
        capacity: int,
    ) -> Tuple[List[Genome], List[Objectives]]:
        fronts = fast_non_dominated_sort_np(scores)
        chosen: List[int] = []
        for front in fronts:
            if len(chosen) + len(front) <= capacity:
                chosen.extend(front)
                continue
            crowd = crowding_distance_np(scores, front)
            ordered = sorted(front, key=lambda i: crowd[i], reverse=True)
            chosen.extend(ordered[: capacity - len(chosen)])
            break
        return [population[i] for i in chosen], [scores[i] for i in chosen]
