"""Approximate adders — the accumulator-side counterpart of step 1.

The paper approximates only the *multipliers*.  A natural question is
whether approximating the PE's accumulator adder would pay too; these
generators provide the circuits, and
:mod:`repro.accuracy.accumulator` provides the analysis showing why the
answer is "far less than the multiplier" (errors injected into the
accumulation loop compound linearly with the reduction length, while
multiplier errors average out).

* :func:`loa_adder` — lower-part-OR adder: the low ``k`` bits are OR-ed
  (no carries), the high part is exact with a single AND-carry bridging
  the halves (Mahdiani et al.'s LOA).
* :func:`truncated_adder` — the low ``k`` result bits are forced to 1
  (midpoint bias) and no carry enters the high part.
"""

from __future__ import annotations

from typing import List, Optional

from repro.circuits.gates import GateKind
from repro.circuits.netlist import Netlist, declare_input_bus
from repro.circuits.synthesis import ArithmeticCircuit, full_adder, half_adder
from repro.errors import SynthesisError


def _check(width: int, approx_bits: int) -> None:
    if width < 1:
        raise SynthesisError(f"adder width must be >= 1, got {width}")
    if not 0 < approx_bits < width:
        raise SynthesisError(
            f"approx_bits must be in (0, {width}), got {approx_bits}"
        )


def loa_adder(
    width: int, approx_bits: int, name: Optional[str] = None
) -> ArithmeticCircuit:
    """Lower-part-OR adder.

    Low ``approx_bits`` positions: ``s_i = a_i | b_i`` (carry-free).
    The carry into the exact upper part is ``a_{k-1} & b_{k-1}`` — the
    one carry the OR approximation most often misses.
    """
    _check(width, approx_bits)
    nl = Netlist(name or f"loa_add{width}k{approx_bits}")
    a = declare_input_bus(nl, "a", width)
    b = declare_input_bus(nl, "b", width)

    sums: List[str] = []
    for i in range(approx_bits):
        sums.append(
            nl.add_gate(GateKind.OR, (a[i], b[i]), nl.fresh_wire(f"lo{i}_"))
        )
    carry: Optional[str] = nl.add_gate(
        GateKind.AND,
        (a[approx_bits - 1], b[approx_bits - 1]),
        nl.fresh_wire("bridge_"),
    )
    for i in range(approx_bits, width):
        if carry is None:
            s, carry = half_adder(nl, a[i], b[i])
        else:
            s, carry = full_adder(nl, a[i], b[i], carry)
        sums.append(s)
    assert carry is not None
    sums.append(carry)
    for wire in sums:
        nl.add_output(wire)
    return ArithmeticCircuit(nl, tuple(a), tuple(b), tuple(sums))


def truncated_adder(
    width: int, approx_bits: int, name: Optional[str] = None
) -> ArithmeticCircuit:
    """Truncated adder: low result bits tied to 1, no low-part carries.

    Forcing the dropped bits to 1 (rather than 0) halves the worst-case
    error by centring it — the standard trick.
    """
    _check(width, approx_bits)
    nl = Netlist(name or f"trunc_add{width}k{approx_bits}")
    a = declare_input_bus(nl, "a", width)
    b = declare_input_bus(nl, "b", width)

    sums: List[str] = []
    for i in range(approx_bits):
        one = nl.fresh_wire(f"kone{i}_")
        nl.tie_constant(one, 1)
        sums.append(one)
    carry: Optional[str] = None
    for i in range(approx_bits, width):
        if carry is None:
            s, carry = half_adder(nl, a[i], b[i])
        else:
            s, carry = full_adder(nl, a[i], b[i], carry)
        sums.append(s)
    assert carry is not None
    sums.append(carry)
    for wire in sums:
        nl.add_output(wire)
    return ArithmeticCircuit(nl, tuple(a), tuple(b), tuple(sums))
