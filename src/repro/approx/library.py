"""The approximate-multiplier Pareto library (output of the paper's step 1).

``build_library`` runs the whole step-1 flow:

1. generate the exact base multiplier;
2. enumerate precision-scaled variants (operand LSB truncation);
3. run NSGA-II over gate-level pruning masks, minimising
   ``(area in GE, NMED)``;
4. optionally prune the truncated variants too (hybrid candidates);
5. merge everything, deduplicate by truth table and keep the
   area/error Pareto front (the exact multiplier is always retained).

Libraries are deterministic in their parameters and memoised per
process, so the accelerator DSE can call :func:`build_library` freely.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.approx.lut import LutMultiplier
from repro.approx.metrics import (
    ErrorMetrics,
    compute_error_metrics,
    gaussian_operand_distribution,
)
from repro.approx.nsga2 import NSGA2_TRAJECTORY_FIELDS, Nsga2, Nsga2Config
from repro.approx.precision import truncate_inputs
from repro.approx.pruning import BatchedPruningObjectives, PruningSpace
from repro.circuits.area import netlist_area_um2, netlist_delay_ps, netlist_ge
from repro.circuits.synthesis import ArithmeticCircuit, make_multiplier
from repro.engine.backends import (
    ThreadBackend,
    in_pool_worker,
    register_pool_context_provider,
)
from repro.engine.checkpoint import (
    CheckpointStore,
    checkpoint_fingerprint,
    trajectory_parts,
)
from repro.engine.diskcache import FitnessDiskCache, context_fingerprint
from repro.engine.population import EngineConfig
from repro.engine.taskgraph import EngineSession
from repro.engine.vectorized import pareto_front_np
from repro.errors import OptimizationError

#: Truncation pairs enumerated as precision-scaling candidates.
DEFAULT_TRUNCATIONS: Tuple[Tuple[int, int], ...] = (
    (1, 0), (0, 1), (1, 1), (2, 1), (1, 2), (2, 2),
    (3, 2), (2, 3), (3, 3), (4, 3), (3, 4), (4, 4),
)

#: Partial-product cut depths for structural candidates.
DEFAULT_STRUCTURAL_CUTS: Tuple[int, ...] = (2, 3, 4, 5, 6, 7, 8)


@dataclass(frozen=True)
class ApproxMultiplier:
    """One library entry: a multiplier plus everything the DSE needs.

    Attributes:
        name: unique label within its library.
        circuit: gate-level implementation.
        lut: functional model (exhaustive product table).
        metrics: uniform-input error statistics.
        dnn_metrics: error statistics weighted by a zero-centred operand
            distribution (what DNN tensors look like).
        area_ge: cell area in NAND2-equivalents.
        origin: ``exact`` / ``precision`` / ``pruned`` / ``hybrid``.
    """

    name: str
    circuit: ArithmeticCircuit
    lut: LutMultiplier
    metrics: ErrorMetrics
    dnn_metrics: ErrorMetrics
    area_ge: float
    origin: str

    @property
    def is_exact(self) -> bool:
        return self.metrics.is_exact

    def area_um2(self, node_nm: int) -> float:
        """Placed cell area at a technology node."""
        return netlist_area_um2(self.circuit.netlist, node_nm)

    def delay_ps(self, node_nm: int) -> float:
        """Critical-path delay at a technology node."""
        return netlist_delay_ps(self.circuit.netlist, node_nm)

    def __repr__(self) -> str:  # pragma: no cover - debug convenience
        return (
            f"ApproxMultiplier({self.name!r}, area={self.area_ge:.1f} GE, "
            f"NMED={self.metrics.nmed:.2e})"
        )


class ApproxLibrary:
    """An ordered collection of Pareto-optimal approximate multipliers."""

    def __init__(self, multipliers: Sequence[ApproxMultiplier], width: int):
        if not multipliers:
            raise OptimizationError("library must contain at least one multiplier")
        self.width = width
        self.multipliers: Tuple[ApproxMultiplier, ...] = tuple(
            sorted(multipliers, key=lambda m: (-m.area_ge, m.metrics.nmed))
        )
        self._by_name = {m.name: m for m in self.multipliers}
        if len(self._by_name) != len(self.multipliers):
            raise OptimizationError("duplicate multiplier names in library")

    def __len__(self) -> int:
        return len(self.multipliers)

    def __iter__(self):
        return iter(self.multipliers)

    def __getitem__(self, index: int) -> ApproxMultiplier:
        return self.multipliers[index]

    @property
    def exact(self) -> ApproxMultiplier:
        """The exact multiplier (always present)."""
        for m in self.multipliers:
            if m.is_exact:
                return m
        raise OptimizationError("library lost its exact multiplier")

    def by_name(self, name: str) -> ApproxMultiplier:
        try:
            return self._by_name[name]
        except KeyError:
            raise OptimizationError(
                f"no multiplier named {name!r}; available: {sorted(self._by_name)}"
            ) from None

    def within_nmed(self, max_nmed: float) -> List[ApproxMultiplier]:
        """All entries with NMED <= bound, largest area first."""
        return [m for m in self.multipliers if m.metrics.nmed <= max_nmed]

    def smallest_within_nmed(self, max_nmed: float) -> ApproxMultiplier:
        """The smallest-area entry meeting an NMED bound."""
        feasible = self.within_nmed(max_nmed)
        if not feasible:
            raise OptimizationError(
                f"no multiplier with NMED <= {max_nmed:g} in library"
            )
        return min(feasible, key=lambda m: (m.area_ge, m.metrics.nmed))

    def area_range_ge(self) -> Tuple[float, float]:
        areas = [m.area_ge for m in self.multipliers]
        return min(areas), max(areas)


# --- construction -------------------------------------------------------------


def _make_entry(
    name: str,
    circuit: ArithmeticCircuit,
    origin: str,
    width: int,
    dnn_weights: np.ndarray,
    table: Optional[np.ndarray] = None,
) -> ApproxMultiplier:
    if table is None:
        table = circuit.truth_table()
    metrics = compute_error_metrics(table, width, width)
    dnn_metrics = compute_error_metrics(
        table, width, width, a_probabilities=dnn_weights, b_probabilities=dnn_weights
    )
    return ApproxMultiplier(
        name=name,
        circuit=circuit,
        lut=LutMultiplier(table.astype(np.int64), width, width, name=name),
        metrics=metrics,
        dnn_metrics=dnn_metrics,
        area_ge=netlist_ge(circuit.netlist),
        origin=origin,
    )


def _pruning_pareto(
    base: ArithmeticCircuit,
    width: int,
    dnn_weights: np.ndarray,
    origin: str,
    seed: int,
    population: int,
    generations: int,
    max_candidates: int,
    kind: str = "wallace",
    engine: Optional[EngineConfig] = None,
    cache_dir: Optional[str] = None,
    checkpoint_dir: Optional[str] = None,
    resume: bool = False,
) -> List[ApproxMultiplier]:
    """NSGA-II search over pruning masks of one base circuit.

    The search runs on the population-batched circuit engine by
    default (engine modes ``auto``/``batch``): the base circuit is
    compiled once and every generation is simulated in one pass, with
    per-genome areas from the vectorized constant-propagation sweep —
    bit-identical objectives to the per-genome reference path, which
    stays selectable via engine mode ``serial`` (or ``thread`` for
    per-genome fan-out).

    With ``cache_dir`` set, genome objectives persist on disk under a
    fingerprint of everything they depend on; cached hits skip circuit
    simulation, and the (deterministic) circuit artifacts of the final
    front are re-derived on demand for entries whose objectives came
    from the cache.

    With ``checkpoint_dir`` set, the NSGA-II loop snapshots its state
    after every generation; ``resume=True`` additionally picks a killed
    search back up at the last finished generation (bit-identical front
    — see :mod:`repro.engine.checkpoint`).  The checkpoint slot is
    keyed by the same identity as the objective cache, so a search
    resumed under changed settings refuses loudly instead of splicing.
    """
    space = PruningSpace(base, max_candidates=max_candidates)
    artifacts: Dict[Tuple[int, ...], Tuple[ArithmeticCircuit, np.ndarray]] = {}
    search_config = Nsga2Config(
        population_size=population,
        generations=generations,
        seed=seed,
    )
    disk = (
        FitnessDiskCache(
            cache_dir,
            # a genome's objectives depend only on the circuit context,
            # not on search hyper-parameters, so the objective cache
            # deliberately keys on less than the checkpoint does
            context_fingerprint(
                "library-pruning", width, kind, origin,
                seed, population, generations, max_candidates,
            ),
        )
        if cache_dir is not None
        else None
    )
    store = (
        CheckpointStore(
            checkpoint_dir,
            name=f"pruning-{origin}-{base.netlist.name}",
            # the checkpoint, unlike the objective cache, protects the
            # search *trajectory*: every Nsga2Config field must key it
            # (trajectory_parts covers crossover/mutation rates, which
            # the pre-FPR001 fingerprint silently omitted)
            fingerprint=checkpoint_fingerprint(
                "library-pruning", width, kind, origin, max_candidates,
                trajectory_parts(search_config, NSGA2_TRAJECTORY_FIELDS),
            ),
        )
        if checkpoint_dir is not None
        else None
    )

    def evaluate(genome: Tuple[int, ...]) -> Tuple[float, float]:
        """Per-genome prune-then-simulate reference path (bit-exact)."""
        if disk is not None:
            cached = disk.get(genome)
            if cached is not None:
                return cached
        circuit = space.apply(genome)
        table = circuit.truth_table()
        artifacts[genome] = (circuit, table)
        metrics = compute_error_metrics(table, width, width)
        objectives = (netlist_ge(circuit.netlist), metrics.nmed)
        if disk is not None:
            disk.put(genome, objectives)
        return objectives

    def random_genome(rng: np.random.Generator) -> Tuple[int, ...]:
        return space.random_genome(rng)

    engine_config = engine or EngineConfig(mode="auto")
    batch_evaluate = None
    if engine_config.mode in ("auto", "batch"):
        workers = engine_config.resolved_workers()
        if workers > 1:
            # oversized populations shard across the thread backend;
            # the evaluator closes over live circuit state, so the
            # process/remote strategies do not apply here
            backend = ThreadBackend(workers)
            # floor of 8: splitting below that trades away the batch
            # amortisation the engine exists for (a 64-core runner must
            # not degenerate to per-genome shards)
            shard_size = min(64, max(8, -(-population // workers)))
        else:
            backend = None
            shard_size = 64
        batched: List[BatchedPruningObjectives] = []

        def batch_evaluate(
            genomes: Sequence[Tuple[int, ...]],
        ) -> List[Tuple[float, float]]:
            """Generation fast path: disk hits, then one batched pass."""
            results: List[Optional[Tuple[float, float]]] = [None] * len(
                genomes
            )
            misses: List[Tuple[int, ...]] = []
            miss_at: List[int] = []
            for index, genome in enumerate(genomes):
                cached = disk.get(genome) if disk is not None else None
                if cached is None:
                    misses.append(genome)
                    miss_at.append(index)
                else:
                    results[index] = cached
            if misses:
                if not batched:  # built lazily: warm disk runs skip it
                    batched.append(
                        BatchedPruningObjectives(
                            space,
                            shard_size=shard_size,
                            backend=backend,
                            kernel_tier=engine_config.kernel_tier,
                        )
                    )
                for index, objectives in zip(
                    miss_at, batched[0](misses)
                ):
                    results[index] = objectives
                    if disk is not None:
                        disk.put(genomes[index], objectives)
            return results  # type: ignore[return-value]

    search = Nsga2(
        evaluate,
        random_genome,
        search_config,
        engine=engine_config,
        batch_evaluate=batch_evaluate,
        checkpoint=store,
        resume_from=store if resume else None,
    )
    front = search.run()
    if disk is not None:
        disk.flush()

    # exact pruned netlists are materialised only for the Pareto
    # survivors; their truth tables come from one batched pass when
    # the engine is up (bit-identical to circuit.truth_table())
    missing = [
        genome for genome, _objectives in front if genome not in artifacts
    ]
    if missing and batch_evaluate is not None and batched:
        tables = batched[0].truth_tables(missing)
        for index, genome in enumerate(missing):
            artifacts[genome] = (space.apply(genome), tables[index])

    entries: List[ApproxMultiplier] = []
    for rank, (genome, _objectives) in enumerate(front):
        if genome not in artifacts:
            circuit = space.apply(genome)
            artifacts[genome] = (circuit, circuit.truth_table())
        circuit, table = artifacts[genome]
        entries.append(
            _make_entry(
                name=f"{origin}_{base.netlist.name}_p{rank}",
                circuit=circuit,
                origin=origin,
                width=width,
                dnn_weights=dnn_weights,
                table=table,
            )
        )
    return entries


def build_library(
    width: int = 8,
    kind: str = "wallace",
    seed: int = 0,
    population: int = 40,
    generations: int = 36,
    max_candidates: int = 96,
    truncations: Sequence[Tuple[int, int]] = DEFAULT_TRUNCATIONS,
    hybrid: bool = True,
    structural: bool = True,
    structural_cuts: Sequence[int] = DEFAULT_STRUCTURAL_CUTS,
    dnn_sigma_fraction: float = 0.25,
    use_cache: bool = True,
    engine: Optional[EngineConfig] = None,
    cache_dir: Optional[str] = None,
    checkpoint_dir: Optional[str] = None,
    resume: bool = False,
    overlap_session: Optional[EngineSession] = None,
) -> ApproxLibrary:
    """Run the full step-1 flow and return the Pareto library.

    Args:
        width: operand bit width (the paper uses 8).
        kind: base multiplier family.
        seed: NSGA-II seed (library is deterministic in all arguments).
        population: NSGA-II population size.
        generations: NSGA-II generations.
        max_candidates: pruning genome length.
        truncations: (trunc_a, trunc_b) precision-scaling pairs to add.
        hybrid: also prune lightly-truncated variants.
        structural: include search-free structural candidates
            (partial-product truncation, lower-part-OR folding).
        structural_cuts: cut depths for the structural candidates.
        dnn_sigma_fraction: operand-distribution width for DNN metrics.
        use_cache: reuse a previously built identical library.
        engine: population-evaluation policy for the NSGA-II searches
            (every mode returns bit-identical libraries, so it is not
            part of the memo key).  ``auto`` (the default) and
            ``batch`` run the population-batched circuit engine —
            one compiled pass per generation; ``serial`` keeps the
            per-genome prune-then-simulate reference, ``thread`` fans
            the reference path out per genome.  ``process`` is
            downgraded to ``thread``: the pruning evaluator closes
            over live circuit state that cannot cross a process
            boundary.  With more than one worker the search-free
            precision/structural variants are additionally scored on a
            concurrent :class:`~repro.engine.taskgraph.EngineSession`
            *overlapping* the NSGA-II searches; their futures are
            gathered in submission order, so the library stays
            bit-identical to the serial build.
        cache_dir: optional directory for the on-disk objective cache,
            so rebuilding the same library in a fresh process (or a
            forked grid worker) skips re-simulating pruned circuits.
        checkpoint_dir: optional directory for per-generation search
            checkpoints; each pruning search (``pruned`` and, with
            ``hybrid``, the second search) owns one atomically-replaced
            slot there.  Like ``cache_dir``, checkpointing changes
            speed after a crash, never results, so it is not part of
            the memo key.
        resume: resume killed searches from their ``checkpoint_dir``
            slots; the finished library is bit-identical to an
            uninterrupted build (mismatched settings refuse with
            :class:`~repro.errors.CheckpointError`).
        overlap_session: caller-owned
            :class:`~repro.engine.taskgraph.EngineSession` to score the
            search-free variants on (e.g. a ``CoordinatorSession`` over
            a remote fleet — the variant cells are pure and picklable).
            Overrides the engine-derived thread session; the caller
            keeps ownership and closes it.  Futures are still gathered
            in submission order, so the library stays bit-identical.
    """
    key = (
        width, kind, seed, population, generations, max_candidates,
        tuple(truncations), hybrid, structural, tuple(structural_cuts),
        dnn_sigma_fraction,
    )
    if use_cache and key in _LIBRARY_CACHE:
        return _LIBRARY_CACHE[key]
    if engine is not None and engine.mode == "process":
        # the pruning evaluator closes over live circuit state and
        # cannot cross a process boundary; thread mode returns a
        # bit-identical library
        engine = EngineConfig(
            mode="thread",
            workers=engine.workers,
            chunk_size=engine.chunk_size,
            kernel_tier=engine.kernel_tier,
        )

    dnn_weights = gaussian_operand_distribution(width, dnn_sigma_fraction)
    exact_circuit = make_multiplier(width, width, kind=kind)
    entries: List[ApproxMultiplier] = [
        _make_entry("exact", exact_circuit, "exact", width, dnn_weights)
    ]

    # the search-free variants (precision truncations + structural
    # cuts) are independent of the pruning searches, so their scoring
    # can overlap the NSGA-II runs: build the specs now, dispatch them
    # as futures, gather *in submission order* right before assembling
    # the library — the entries list (and with it `_pareto_entries`'s
    # insertion-order dedup) is bit-identical to the serial build
    variant_specs: List[Tuple[str, Any, str]] = []
    for trunc_a, trunc_b in truncations:
        variant_specs.append(
            (
                f"trunc_a{trunc_a}b{trunc_b}",
                truncate_inputs(exact_circuit, trunc_a, trunc_b),
                "precision",
            )
        )

    if structural:
        from repro.approx.structural import (
            loa_multiplier,
            truncated_pp_multiplier,
        )

        for cut in structural_cuts:
            variant_specs.append(
                (
                    f"tpp{cut}",
                    truncated_pp_multiplier(width, cut, correction=True),
                    "structural",
                )
            )
            variant_specs.append(
                (f"loa{cut}", loa_multiplier(width, cut), "structural")
            )

    overlap_workers = 0
    if (
        variant_specs
        and engine is not None
        and engine.mode != "serial"
        and engine.resolved_workers() > 1
        and not in_pool_worker()
    ):
        overlap_workers = min(engine.resolved_workers(), len(variant_specs))

    session: Optional[EngineSession] = None
    owns_session = False
    variant_futures: List[Any] = []
    if variant_specs and overlap_session is not None:
        session = overlap_session
    elif overlap_workers > 1:
        session = EngineSession(ThreadBackend(overlap_workers))
        owns_session = True
    if session is not None:
        variant_futures = [
            session.submit(
                _make_entry, [(name, circuit, origin, width, dnn_weights)]
            )
            for name, circuit, origin in variant_specs
        ]
    else:
        entries.extend(
            _make_entry(name, circuit, origin, width, dnn_weights)
            for name, circuit, origin in variant_specs
        )

    try:
        search_entries = list(
            _pruning_pareto(
                exact_circuit, width, dnn_weights, "pruned",
                seed, population, generations, max_candidates,
                kind=kind, engine=engine, cache_dir=cache_dir,
                checkpoint_dir=checkpoint_dir, resume=resume,
            )
        )

        if hybrid:
            light_truncated = truncate_inputs(exact_circuit, 1, 1)
            search_entries.extend(
                _pruning_pareto(
                    light_truncated, width, dnn_weights, "hybrid",
                    seed + 1, max(population // 2, 8),
                    max(generations // 2, 6), max_candidates,
                    kind=kind, engine=engine, cache_dir=cache_dir,
                    checkpoint_dir=checkpoint_dir, resume=resume,
                )
            )

        if session is not None:
            # splice the overlapped variants back into their serial
            # position (after exact, before the search entries)
            entries.extend(
                future.result()[0] for future in variant_futures
            )
    finally:
        if session is not None and owns_session:
            session.close()
    entries.extend(search_entries)

    library = ApproxLibrary(_pareto_entries(entries), width)
    if use_cache:
        _LIBRARY_CACHE[key] = library
    return library


def _pareto_entries(entries: List[ApproxMultiplier]) -> List[ApproxMultiplier]:
    """Deduplicate by truth table; keep the Pareto set + exact.

    The front is taken over three objectives: area, uniform-input NMED,
    and the DNN-weighted second error moment.  The third objective
    matters because the accelerator DSE selects multipliers by their
    *DNN* error — an entry dominated under uniform inputs can still be
    the best choice under DNN-like operand distributions (truncation
    concentrates error on small operands that DNN tensors visit often,
    pruning on rare large ones).
    """
    unique: Dict[bytes, ApproxMultiplier] = {}
    for entry in entries:
        digest = entry.lut.table.tobytes()
        best = unique.get(digest)
        if best is None or entry.area_ge < best.area_ge:
            unique[digest] = entry

    scored = [
        (
            entry,
            (
                entry.area_ge,
                entry.metrics.nmed,
                entry.dnn_metrics.variance + entry.dnn_metrics.bias**2,
            ),
        )
        for entry in unique.values()
    ]
    front = {id(item) for item, _ in pareto_front_np(scored)}
    kept = [entry for entry in unique.values() if id(entry) in front]
    exact = [e for e in unique.values() if e.is_exact]
    for e in exact:
        if e not in kept:
            kept.append(e)
    return kept


_LIBRARY_CACHE: Dict[tuple, ApproxLibrary] = {}


def _library_pool_context() -> Tuple[tuple, ...]:
    """Warm-pool fingerprint: which library settings exist in-process.

    Shared-pool workers fork with the parent's library memo; a harness
    that later builds a library for *different* settings would find
    workers forked before it existed, each rebuilding it per task.
    Exposing the memo keys as pool context makes
    :func:`repro.engine.backends.shared_process_pool` refork instead
    (results were never affected — only throughput).
    """
    return tuple(sorted(_LIBRARY_CACHE, key=repr))


register_pool_context_provider("approx-library", _library_pool_context)
