"""Approximate multiplier generation (the paper's step 1).

Produces an area/error Pareto library of 8x8 multipliers via:

* **precision scaling** (:mod:`repro.approx.precision`) — operand LSB
  truncation, and
* **gate-level pruning** (:mod:`repro.approx.pruning`) — tying internal
  wires to constants, searched by NSGA-II (:mod:`repro.approx.nsga2`).

Error metrics are exhaustive (:mod:`repro.approx.metrics`), functional
models are plain LUTs (:mod:`repro.approx.lut`), and
:mod:`repro.approx.library` assembles everything into the deterministic
:class:`~repro.approx.library.ApproxLibrary` the accelerator DSE consumes.
"""

from repro.approx.metrics import ErrorMetrics, compute_error_metrics
from repro.approx.lut import LutMultiplier
from repro.approx.precision import precision_scaled_multiplier
from repro.approx.pruning import BatchedPruningObjectives, PruningSpace
from repro.approx.nsga2 import Nsga2, Nsga2Config, pareto_front
from repro.approx.library import ApproxLibrary, ApproxMultiplier, build_library

__all__ = [
    "ErrorMetrics",
    "compute_error_metrics",
    "LutMultiplier",
    "precision_scaled_multiplier",
    "BatchedPruningObjectives",
    "PruningSpace",
    "Nsga2",
    "Nsga2Config",
    "pareto_front",
    "ApproxLibrary",
    "ApproxMultiplier",
    "build_library",
]
