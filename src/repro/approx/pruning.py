"""Gate-level pruning search space.

Following the variability-aware approximate-synthesis flow the paper
cites (Balaskas et al., TCAS-I 2022), pruning candidates are internal
wires ranked by how cheaply they can be tied to a constant:

* each gate-output wire gets a **preferred constant** — its more likely
  logic value under uniform inputs (so the tie agrees with the wire most
  of the time), and
* a **disagreement score** ``min(p1, 1 - p1)`` — the fraction of input
  cases where the tie is wrong.  Wires that are almost always 0 or 1
  are nearly free to prune.

An NSGA-II genome is a bitmask over the lowest-disagreement candidates;
decoding a genome prunes the selected wires and simplifies the netlist.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.approx.metrics import exact_products, uniform_case_weights
from repro.circuits.batched import BatchedCircuitEvaluator
from repro.circuits.simulate import signal_probabilities
from repro.circuits.synthesis import ArithmeticCircuit
from repro.circuits.transform import prune_wires
from repro.engine.backends import ExecutorBackend, SerialBackend
from repro.errors import OptimizationError


@dataclass(frozen=True)
class PruningCandidate:
    """One prunable wire with its preferred constant and cost score."""

    wire: str
    constant: int
    disagreement: float


class PruningSpace:
    """Ranked pruning candidates of one arithmetic circuit.

    Args:
        circuit: the exact multiplier to approximate.
        max_candidates: genome length; only the ``max_candidates``
            cheapest wires are searchable.  64 covers everything the
            8x8 search ever selects while keeping genomes compact.
        protect_outputs: exclude wires that directly drive primary
            outputs (pruning those produces gross, never-Pareto errors).
    """

    def __init__(
        self,
        circuit: ArithmeticCircuit,
        max_candidates: int = 64,
        protect_outputs: bool = True,
    ):
        if max_candidates < 1:
            raise OptimizationError(
                f"max_candidates must be >= 1, got {max_candidates}"
            )
        self.circuit = circuit
        probabilities = signal_probabilities(
            circuit.netlist, [circuit.a_wires, circuit.b_wires]
        )
        protected = set(circuit.netlist.outputs) if protect_outputs else set()
        candidates: List[PruningCandidate] = []
        for wire in circuit.netlist.gates:
            if wire in protected:
                continue
            p1 = probabilities[wire]
            constant = 1 if p1 >= 0.5 else 0
            candidates.append(
                PruningCandidate(wire, constant, min(p1, 1.0 - p1))
            )
        candidates.sort(key=lambda c: (c.disagreement, c.wire))
        self.candidates: Tuple[PruningCandidate, ...] = tuple(
            candidates[:max_candidates]
        )
        if not self.candidates:
            raise OptimizationError(
                f"no prunable wires in circuit {circuit.netlist.name}"
            )

    @property
    def genome_length(self) -> int:
        """Number of bits in a pruning genome."""
        return len(self.candidates)

    def assignments_for(self, genome: Sequence[int]) -> Dict[str, int]:
        """Wire -> constant assignments selected by a genome bitmask."""
        if len(genome) != self.genome_length:
            raise OptimizationError(
                f"genome length {len(genome)} != {self.genome_length}"
            )
        return {
            c.wire: c.constant
            for bit, c in zip(genome, self.candidates)
            if bit
        }

    def apply(self, genome: Sequence[int]) -> ArithmeticCircuit:
        """Prune the circuit according to ``genome`` and simplify."""
        assignments = self.assignments_for(genome)
        if not assignments:
            return self.circuit
        pruned = prune_wires(self.circuit.netlist, assignments)
        return self.circuit.with_netlist(pruned)

    def tie_candidates(self) -> Tuple[Tuple[str, int], ...]:
        """The ``(wire, constant)`` pairs in genome order."""
        return tuple((c.wire, c.constant) for c in self.candidates)

    def random_genome(
        self, rng: np.random.Generator, density: float | None = None
    ) -> Tuple[int, ...]:
        """A random genome with approximately ``density`` bits set.

        When ``density`` is None a fresh density is drawn log-uniformly
        in [1/length, 0.3] per call, so initial populations mix
        near-exact candidates (one or two pruned wires — the fine-grained
        low-error end the accuracy tiers need) with aggressive ones.
        """
        if density is None:
            low = 1.0 / self.genome_length
            density = float(np.exp(rng.uniform(np.log(low), np.log(0.3))))
        bits = (rng.random(self.genome_length) < density).astype(int)
        return tuple(int(b) for b in bits)


class BatchedPruningObjectives:
    """Population-batched ``(area GE, NMED)`` objectives for one space.

    The NSGA-II fast path: instead of ``prune_wires`` + recompile +
    simulate per genome, a whole generation is evaluated by
    :class:`repro.circuits.batched.BatchedCircuitEvaluator` in one
    compiled pass, and the error moment is computed from the batched
    truth tables with the memoised exact-product and case-weight
    tables.

    Bit-identity: every objective tuple equals the reference
    ``(netlist_ge(space.apply(g).netlist),
    compute_error_metrics(space.apply(g).truth_table(), a, b).nmed)``.
    The area of the empty genome is the *unsimplified* base circuit's
    (mirroring ``PruningSpace.apply``), and the NMED sum is exact in
    float64 — every term is an integer error scaled by the dyadic
    uniform case weight — so summation order cannot perturb it.

    Args:
        space: the pruning space whose genomes are evaluated.
        shard_size: maximum genomes per compiled pass (bounds the
            ``(P, n_words)`` slab memory).
        backend: optional :class:`~repro.engine.backends.ExecutorBackend`
            the shards are dispatched through (``serial`` / ``thread``;
            the evaluator closes over live circuit state, so it cannot
            cross a process boundary).  Defaults to in-process serial.
        kernel_tier: compiled-kernel tier forwarded to the batched
            evaluator (``None`` = ambient default; every tier is
            bit-identical, see :mod:`repro.engine.kernels`).
    """

    def __init__(
        self,
        space: PruningSpace,
        shard_size: int = 64,
        backend: Optional[ExecutorBackend] = None,
        kernel_tier: Optional[str] = None,
    ):
        if shard_size < 1:
            raise OptimizationError(
                f"shard_size must be >= 1, got {shard_size}"
            )
        self.space = space
        self.shard_size = shard_size
        self.backend = backend or SerialBackend()
        self._engine = BatchedCircuitEvaluator(
            space.circuit, space.tie_candidates(), kernel_tier=kernel_tier
        )
        circuit = space.circuit
        exact = exact_products(circuit.a_width, circuit.b_width)
        self._weights = uniform_case_weights(
            circuit.a_width, circuit.b_width
        )
        peak = int(exact.max())
        self._max_product = float(peak) if peak > 0 else 1.0
        # int32 keeps every |approx - exact| exact (the synthesis cap
        # bounds results to < 2^26) at half the memory traffic of the
        # reference's int64; the per-element float64 products, and
        # hence the sums, are identical
        self._exact = exact.astype(np.int32)
        self._exact.setflags(write=False)

    def _shard_objectives(
        self, genomes: Sequence[Tuple[int, ...]]
    ) -> List[Tuple[float, float]]:
        """Score one shard of genomes in a single compiled pass.

        ``med`` is a matrix-vector product: every term is an integer
        error scaled by the dyadic uniform weight, so each partial sum
        is exactly representable in float64 — BLAS blocking/FMA cannot
        perturb it, and the result equals the reference's
        ``np.sum(abs_error * weights)`` bit for bit.
        """
        tables, areas = self._engine.evaluate(genomes)
        signed = tables.astype(np.int32)
        signed -= self._exact
        np.abs(signed, out=signed)
        med = signed.astype(np.float64) @ self._weights
        nmed = med / self._max_product
        results: List[Tuple[float, float]] = []
        for i, genome in enumerate(genomes):
            area = (
                float(areas[i])
                if any(genome)
                else self._engine.base_area_ge
            )
            results.append((area, float(nmed[i])))
        return results

    def truth_tables(self, genomes: Sequence[Tuple[int, ...]]) -> np.ndarray:
        """Per-genome uint64 truth tables (reference-identical rows)."""
        return self._engine.truth_tables(genomes)

    def objectives(
        self, genomes: Sequence[Tuple[int, ...]]
    ) -> List[Tuple[float, float]]:
        """Objectives per genome, in input order, reference-identical."""
        genomes = list(genomes)
        if not genomes:
            return []
        shards = [
            [(genomes[start : start + self.shard_size],)]
            for start in range(0, len(genomes), self.shard_size)
        ]
        shard_results = self.backend.map_shards(
            self._shard_objectives, shards
        )
        return [
            objectives
            for shard in shard_results
            for objectives in shard[0]
        ]

    __call__ = objectives
