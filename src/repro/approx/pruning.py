"""Gate-level pruning search space.

Following the variability-aware approximate-synthesis flow the paper
cites (Balaskas et al., TCAS-I 2022), pruning candidates are internal
wires ranked by how cheaply they can be tied to a constant:

* each gate-output wire gets a **preferred constant** — its more likely
  logic value under uniform inputs (so the tie agrees with the wire most
  of the time), and
* a **disagreement score** ``min(p1, 1 - p1)`` — the fraction of input
  cases where the tie is wrong.  Wires that are almost always 0 or 1
  are nearly free to prune.

An NSGA-II genome is a bitmask over the lowest-disagreement candidates;
decoding a genome prunes the selected wires and simplifies the netlist.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.circuits.simulate import signal_probabilities
from repro.circuits.synthesis import ArithmeticCircuit
from repro.circuits.transform import prune_wires
from repro.errors import OptimizationError


@dataclass(frozen=True)
class PruningCandidate:
    """One prunable wire with its preferred constant and cost score."""

    wire: str
    constant: int
    disagreement: float


class PruningSpace:
    """Ranked pruning candidates of one arithmetic circuit.

    Args:
        circuit: the exact multiplier to approximate.
        max_candidates: genome length; only the ``max_candidates``
            cheapest wires are searchable.  64 covers everything the
            8x8 search ever selects while keeping genomes compact.
        protect_outputs: exclude wires that directly drive primary
            outputs (pruning those produces gross, never-Pareto errors).
    """

    def __init__(
        self,
        circuit: ArithmeticCircuit,
        max_candidates: int = 64,
        protect_outputs: bool = True,
    ):
        if max_candidates < 1:
            raise OptimizationError(
                f"max_candidates must be >= 1, got {max_candidates}"
            )
        self.circuit = circuit
        probabilities = signal_probabilities(
            circuit.netlist, [circuit.a_wires, circuit.b_wires]
        )
        protected = set(circuit.netlist.outputs) if protect_outputs else set()
        candidates: List[PruningCandidate] = []
        for wire in circuit.netlist.gates:
            if wire in protected:
                continue
            p1 = probabilities[wire]
            constant = 1 if p1 >= 0.5 else 0
            candidates.append(
                PruningCandidate(wire, constant, min(p1, 1.0 - p1))
            )
        candidates.sort(key=lambda c: (c.disagreement, c.wire))
        self.candidates: Tuple[PruningCandidate, ...] = tuple(
            candidates[:max_candidates]
        )
        if not self.candidates:
            raise OptimizationError(
                f"no prunable wires in circuit {circuit.netlist.name}"
            )

    @property
    def genome_length(self) -> int:
        """Number of bits in a pruning genome."""
        return len(self.candidates)

    def assignments_for(self, genome: Sequence[int]) -> Dict[str, int]:
        """Wire -> constant assignments selected by a genome bitmask."""
        if len(genome) != self.genome_length:
            raise OptimizationError(
                f"genome length {len(genome)} != {self.genome_length}"
            )
        return {
            c.wire: c.constant
            for bit, c in zip(genome, self.candidates)
            if bit
        }

    def apply(self, genome: Sequence[int]) -> ArithmeticCircuit:
        """Prune the circuit according to ``genome`` and simplify."""
        assignments = self.assignments_for(genome)
        if not assignments:
            return self.circuit
        pruned = prune_wires(self.circuit.netlist, assignments)
        return self.circuit.with_netlist(pruned)

    def random_genome(
        self, rng: np.random.Generator, density: float | None = None
    ) -> Tuple[int, ...]:
        """A random genome with approximately ``density`` bits set.

        When ``density`` is None a fresh density is drawn log-uniformly
        in [1/length, 0.3] per call, so initial populations mix
        near-exact candidates (one or two pruned wires — the fine-grained
        low-error end the accuracy tiers need) with aggressive ones.
        """
        if density is None:
            low = 1.0 / self.genome_length
            density = float(np.exp(rng.uniform(np.log(low), np.log(0.3))))
        bits = (rng.random(self.genome_length) < density).astype(int)
        return tuple(int(b) for b in bits)
