"""Structural approximate multipliers (design-time, search-free).

Beyond searched gate-level pruning and operand truncation, the
approximate-arithmetic literature uses fixed *structural* schemes; two
classics are implemented as additional library candidates:

* **partial-product truncation** (:func:`truncated_pp_multiplier`) —
  drop every partial product below a cut column; optionally compensate
  with the dropped columns' expected value as a constant correction
  (a "constant-correction truncated multiplier");
* **lower-part OR approximation** (:func:`loa_multiplier`) — keep all
  partial products but replace carry-propagating compression in the low
  columns with a simple per-column OR fold (no carries leave the
  approximate region), in the spirit of the lower-part-OR adder (LOA).

Both shrink area deterministically without any search, giving the
library fine-grained low-error points the NSGA-II run can compete
against.
"""

from __future__ import annotations

from typing import List, Optional

from repro.circuits.gates import GateKind
from repro.circuits.netlist import Netlist, declare_input_bus
from repro.circuits.synthesis import (
    ArithmeticCircuit,
    carry_propagate,
    compress_columns,
    partial_product_columns,
)
from repro.circuits.transform import simplify
from repro.errors import SynthesisError


def _check_cut(width: int, cut: int, max_cut_fraction: float = 1.0) -> None:
    if cut < 1:
        raise SynthesisError(f"cut must be >= 1, got {cut}")
    limit = int(2 * width * max_cut_fraction)
    if cut >= limit:
        raise SynthesisError(
            f"cut {cut} removes every useful column of a {width}x{width} "
            f"multiplier (limit {limit})"
        )


def _dropped_expectation(width: int, cut: int) -> int:
    """Rounded expected value of the dropped partial-product columns.

    Each AND partial product is 1 with probability 1/4 under uniform
    inputs; column ``c`` (c < width) holds ``c + 1`` products.
    """
    expectation = 0.0
    for column in range(cut):
        height = min(column, width - 1, 2 * width - 2 - column) + 1
        expectation += height * 0.25 * (1 << column)
    return int(round(expectation))


def truncated_pp_multiplier(
    width: int = 8,
    cut: int = 4,
    correction: bool = True,
    name: Optional[str] = None,
) -> ArithmeticCircuit:
    """Multiplier with partial-product columns below ``cut`` removed.

    Args:
        width: operand width.
        cut: first kept column; products at positions < cut are never
            generated (their AND gates disappear too).
        correction: add the dropped columns' expected value as a
            constant, which centres the error distribution (classic
            constant-correction truncation).
    """
    _check_cut(width, cut)
    out_width = 2 * width
    nl = Netlist(name or f"mul{width}x{width}_tpp{cut}{'c' if correction else ''}")
    a = declare_input_bus(nl, "a", width)
    b = declare_input_bus(nl, "b", width)

    columns: List[List[str]] = [[] for _ in range(out_width)]
    for j in range(width):
        for i in range(width):
            position = i + j
            if position < cut:
                continue
            pp = nl.add_gate(
                GateKind.AND, (a[i], b[j]), nl.fresh_wire(f"pp{j}_{i}_")
            )
            columns[position].append(pp)

    if correction:
        constant = _dropped_expectation(width, cut)
        for position in range(out_width):
            if (constant >> position) & 1:
                one = nl.fresh_wire(f"corr{position}_")
                nl.tie_constant(one, 1)
                columns[position].append(one)

    columns = compress_columns(nl, columns, cap=out_width)
    outputs = carry_propagate(nl, columns, cap=out_width)[:out_width]
    while len(outputs) < out_width:  # fully-empty low columns
        zero = nl.fresh_wire("zero")
        nl.tie_constant(zero, 0)
        outputs.append(zero)
    for wire in outputs:
        nl.add_output(wire)
    circuit = ArithmeticCircuit(nl, tuple(a), tuple(b), tuple(outputs))
    return circuit.with_netlist(simplify(nl))


def loa_multiplier(
    width: int = 8,
    approx_columns: int = 4,
    name: Optional[str] = None,
) -> ArithmeticCircuit:
    """Multiplier with OR-folded (carry-free) low columns.

    Args:
        width: operand width.
        approx_columns: number of least-significant product columns
            compressed by OR folding instead of adders.  Carries that
            would leave the approximate region are dropped.
    """
    _check_cut(width, approx_columns)
    out_width = 2 * width
    nl = Netlist(name or f"mul{width}x{width}_loa{approx_columns}")
    a = declare_input_bus(nl, "a", width)
    b = declare_input_bus(nl, "b", width)

    columns = partial_product_columns(nl, list(a), list(b))

    outputs_low: List[str] = []
    for position in range(min(approx_columns, out_width)):
        wires = columns[position]
        if not wires:
            zero = nl.fresh_wire("zero")
            nl.tie_constant(zero, 0)
            outputs_low.append(zero)
            continue
        acc = wires[0]
        for wire in wires[1:]:
            acc = nl.add_gate(
                GateKind.OR, (acc, wire), nl.fresh_wire(f"or{position}_")
            )
        outputs_low.append(acc)

    exact_columns = [[] for _ in range(approx_columns)] + [
        list(col) for col in columns[approx_columns:]
    ]
    exact_columns = compress_columns(nl, exact_columns, cap=out_width)
    outputs_high = carry_propagate(nl, exact_columns, cap=out_width)
    outputs = outputs_low + outputs_high[approx_columns:out_width]
    for wire in outputs:
        nl.add_output(wire)
    circuit = ArithmeticCircuit(nl, tuple(a), tuple(b), tuple(outputs))
    return circuit.with_netlist(simplify(nl))
