"""LUT-based functional models of (approximate) multipliers.

This is the same trick ApproxTrain uses: once a multiplier's exhaustive
truth table is known, DNN inference never needs the netlist again — a
table lookup per MAC reproduces the approximate arithmetic bit-exactly.

DNN tensors are signed int8 while the hardware multipliers are unsigned
8x8 magnitude multipliers (the standard arrangement: sign-magnitude
handling lives outside the array).  :meth:`LutMultiplier.signed_product`
implements that convention.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import SimulationError


@dataclass(frozen=True)
class LutMultiplier:
    """Vectorised lookup-table multiplier.

    Attributes:
        table: products indexed by ``a + (b << a_width)`` for unsigned
            operands.
        a_width: bit width of operand A.
        b_width: bit width of operand B.
        name: label for reports.
    """

    table: np.ndarray
    a_width: int
    b_width: int
    name: str = "lut"

    def __post_init__(self) -> None:
        expected = 1 << (self.a_width + self.b_width)
        if self.table.shape != (expected,):
            raise SimulationError(
                f"LUT for {self.a_width}x{self.b_width} needs {expected} "
                f"entries, got shape {self.table.shape}"
            )

    @classmethod
    def exact(cls, a_width: int = 8, b_width: int = 8) -> "LutMultiplier":
        """Exact multiplier LUT (reference behaviour)."""
        cases = np.arange(1 << (a_width + b_width), dtype=np.int64)
        a = cases & ((1 << a_width) - 1)
        b = cases >> a_width
        return cls(a * b, a_width, b_width, name="exact")

    # ------------------------------------------------------------------

    def product(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        """Unsigned product lookup.

        Args:
            a: unsigned operand array, values in ``[0, 2**a_width)``.
            b: unsigned operand array, broadcast-compatible with ``a``.
        """
        a = np.asarray(a)
        b = np.asarray(b)
        try:
            np.broadcast_shapes(a.shape, b.shape)
        except ValueError:
            raise SimulationError(
                f"operand shapes differ: {a.shape} vs {b.shape}"
            ) from None
        a64 = a.astype(np.int64)
        b64 = b.astype(np.int64)
        if (
            np.any(a64 < 0)
            or np.any(b64 < 0)
            or np.any(a64 >= 1 << self.a_width)
            or np.any(b64 >= 1 << self.b_width)
        ):
            raise SimulationError(
                f"operands out of range for {self.a_width}x{self.b_width} LUT"
            )
        return self.table[a64 + (b64 << self.a_width)]

    def signed_product(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        """Sign-magnitude product of signed operands.

        The hardware convention: magnitudes go through the (approximate)
        unsigned array; signs are XOR-ed outside it.  Magnitude
        ``2**(width-1)`` (from the asymmetric two's-complement minimum)
        is saturated to ``2**(width-1) - 1`` as a quantiser would.
        """
        a = np.asarray(a, dtype=np.int64)
        b = np.asarray(b, dtype=np.int64)
        max_a = (1 << (self.a_width - 1)) - 1
        max_b = (1 << (self.b_width - 1)) - 1
        mag_a = np.minimum(np.abs(a), max_a)
        mag_b = np.minimum(np.abs(b), max_b)
        sign = np.sign(a) * np.sign(b)
        return sign * self.product(mag_a, mag_b)

    def __call__(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        """Alias for :meth:`signed_product` (the common DNN use)."""
        return self.signed_product(a, b)
