"""Unit conventions and conversion helpers.

The library uses one canonical unit per physical quantity and converts at
the edges.  Canonical units:

==============  ======================  =======================
Quantity        Canonical unit          Notes
==============  ======================  =======================
area            mm^2                    die / block areas
small area      um^2                    cells, SRAM bit cells
carbon          gCO2 (grams CO2-eq)     embodied footprints
carbon / area   gCO2 / mm^2             CFPA in Eq. 2
energy          J                       operational model
energy / area   kWh / cm^2              EPA as published by ACT
time            s
frequency       Hz
capacity        bytes
==============  ======================  =======================

Keeping conversions in one module makes the carbon equations in
:mod:`repro.carbon.act` read exactly like the paper's Eq. 1 and Eq. 2.
"""

from __future__ import annotations

# --- area -----------------------------------------------------------------

UM2_PER_MM2 = 1_000_000.0
MM2_PER_CM2 = 100.0


def um2_to_mm2(area_um2: float) -> float:
    """Convert square micrometres to square millimetres."""
    return area_um2 / UM2_PER_MM2


def mm2_to_um2(area_mm2: float) -> float:
    """Convert square millimetres to square micrometres."""
    return area_mm2 * UM2_PER_MM2


def cm2_to_mm2(area_cm2: float) -> float:
    """Convert square centimetres to square millimetres."""
    return area_cm2 * MM2_PER_CM2


def mm2_to_cm2(area_mm2: float) -> float:
    """Convert square millimetres to square centimetres."""
    return area_mm2 / MM2_PER_CM2


# --- carbon ---------------------------------------------------------------

G_PER_KG = 1000.0


def kg_to_g(mass_kg: float) -> float:
    """Convert kilograms to grams."""
    return mass_kg * G_PER_KG


def g_to_kg(mass_g: float) -> float:
    """Convert grams to kilograms."""
    return mass_g / G_PER_KG


def kg_per_cm2_to_g_per_mm2(value: float) -> float:
    """Convert kgCO2/cm^2 (ACT convention) to gCO2/mm^2 (ours)."""
    return value * G_PER_KG / MM2_PER_CM2


# --- energy ---------------------------------------------------------------

J_PER_KWH = 3.6e6


def kwh_to_j(energy_kwh: float) -> float:
    """Convert kilowatt-hours to joules."""
    return energy_kwh * J_PER_KWH


def j_to_kwh(energy_j: float) -> float:
    """Convert joules to kilowatt-hours."""
    return energy_j / J_PER_KWH


# --- frequency / time ------------------------------------------------------

HZ_PER_MHZ = 1e6
HZ_PER_GHZ = 1e9


def mhz_to_hz(freq_mhz: float) -> float:
    """Convert megahertz to hertz."""
    return freq_mhz * HZ_PER_MHZ


def ghz_to_hz(freq_ghz: float) -> float:
    """Convert gigahertz to hertz."""
    return freq_ghz * HZ_PER_GHZ


def cycles_to_seconds(cycles: float, clock_hz: float) -> float:
    """Time taken by ``cycles`` clock cycles at ``clock_hz``."""
    if clock_hz <= 0:
        raise ValueError(f"clock frequency must be positive, got {clock_hz}")
    return cycles / clock_hz


# --- capacity ---------------------------------------------------------------

BYTES_PER_KIB = 1024
BYTES_PER_MIB = 1024 * 1024


def kib_to_bytes(kib: float) -> int:
    """Convert KiB to bytes (rounded to an integer byte count)."""
    return int(round(kib * BYTES_PER_KIB))


def bytes_to_kib(n_bytes: float) -> float:
    """Convert bytes to KiB."""
    return n_bytes / BYTES_PER_KIB
