"""Single-objective GA with feasibility-first constraint handling.

Tournament selection compares individuals with Deb's rules (see
:meth:`repro.ga.fitness.FitnessResult.better_than`), crossover and
mutation delegate to the chromosome space, and the best-ever individual
is kept elitist.  Runs are deterministic in the seed.

Crash safety: with a ``checkpoint=`` store the driver snapshots its
complete loop state — population, fitness results, elite, history,
distinct-genome set, and the exact RNG generator state — after the
initial evaluation and after every generation; ``resume_from=`` picks a
killed run back up at the last finished generation with a final outcome
bit-identical to an uninterrupted run (fingerprint-guarded, see
:mod:`repro.engine.checkpoint`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence, Tuple

import numpy as np

from repro.engine.checkpoint import CheckpointStore, restore_rng_state
from repro.errors import CheckpointError, OptimizationError
from repro.ga.chromosome import ChromosomeSpace, Genome
from repro.ga.fitness import FitnessResult


#: Trajectory declaration for :class:`GaConfig` (see the FPR001 rule
#: in :mod:`repro.analysis`): every one of these fields shapes the
#: search trajectory, so all of them feed the checkpoint fingerprint
#: through :func:`repro.engine.checkpoint.trajectory_parts`.
GA_TRAJECTORY_FIELDS = (
    "population_size",
    "generations",
    "crossover_rate",
    "mutation_rate",
    "tournament_size",
    "seed",
)


@dataclass(frozen=True)
class GaConfig:  # repro: fingerprinted[GA_TRAJECTORY_FIELDS]
    """GA hyper-parameters.

    Every field is trajectory-determining (``GA_TRAJECTORY_FIELDS``):
    changing any of them must refuse to resume an old checkpoint.

    Attributes:
        population_size: individuals per generation.
        generations: evolution steps.
        crossover_rate: probability of crossover per offspring.
        mutation_rate: per-gene mutation probability.
        tournament_size: contestants per selection tournament.
        seed: RNG seed.
    """

    population_size: int = 24
    generations: int = 30
    crossover_rate: float = 0.9
    mutation_rate: float = 0.25
    tournament_size: int = 2
    seed: int = 0

    def __post_init__(self) -> None:
        if self.population_size < 4:
            raise OptimizationError(
                f"population_size must be >= 4, got {self.population_size}"
            )
        if self.generations < 1:
            raise OptimizationError(
                f"generations must be >= 1, got {self.generations}"
            )
        if not 0.0 <= self.crossover_rate <= 1.0:
            raise OptimizationError("crossover_rate must be in [0, 1]")
        if not 0.0 <= self.mutation_rate <= 1.0:
            raise OptimizationError("mutation_rate must be in [0, 1]")
        if self.tournament_size < 2:
            raise OptimizationError("tournament_size must be >= 2")


@dataclass(frozen=True)
class GaOutcome:
    """Result of one GA run.

    Attributes:
        best: the best individual ever evaluated (elitist).
        history: best-so-far after every generation (for convergence
            plots and the search-quality ablation).
        evaluations: distinct fitness evaluations performed.
    """

    best: FitnessResult
    history: Tuple[FitnessResult, ...]
    evaluations: int

    @property
    def converged_generation(self) -> int:
        """First generation whose best equals the final best."""
        for index, record in enumerate(self.history):
            if record.cdp == self.best.cdp and record.feasible == self.best.feasible:
                return index
        return len(self.history) - 1


class GeneticAlgorithm:
    """GA driver over a chromosome space and a fitness evaluator.

    Args:
        space: gene encoding.
        evaluate: genome -> :class:`FitnessResult` (memoisation is the
            evaluator's job).
        config: hyper-parameters.
        seeds: known-good genomes to seed the initial population.
        population_evaluate: optional whole-generation evaluator (see
            :class:`repro.engine.population.PopulationEvaluator` and
            :meth:`repro.ga.fitness.FitnessEvaluator.evaluate_population`);
            must return results bit-identical to mapping ``evaluate``
            over the generation.  Defaults to the serial reference path.
        checkpoint: optional store snapshotting the full loop state
            after every generation (crash-safe atomic writes).
        resume_from: optional store to resume a killed run from; a
            matching snapshot restores population, results, elite,
            history, and the exact RNG state, so the finished run is
            bit-identical to one that never crashed.  Typically the
            same store as ``checkpoint``.
    """

    def __init__(
        self,
        space: ChromosomeSpace,
        evaluate: Callable[[Genome], FitnessResult],
        config: GaConfig | None = None,
        seeds: List[Genome] | None = None,
        population_evaluate: Optional[
            Callable[[Sequence[Genome]], List[FitnessResult]]
        ] = None,
        checkpoint: Optional[CheckpointStore] = None,
        resume_from: Optional[CheckpointStore] = None,
    ):
        self.space = space
        self.evaluate = evaluate
        self.config = config or GaConfig()
        self.seeds = list(seeds or [])
        self.population_evaluate = population_evaluate
        self.checkpoint = checkpoint
        self.resume_from = resume_from
        for genome in self.seeds:
            space.validate(genome)

    def _evaluate_population(
        self, population: Sequence[Genome]
    ) -> List[FitnessResult]:
        if self.population_evaluate is not None:
            return list(self.population_evaluate(population))
        return [self.evaluate(g) for g in population]  # serial reference

    def run(self) -> GaOutcome:
        """Evolve and return the best design found."""
        cfg = self.config
        rng = np.random.default_rng(cfg.seed)

        state = (
            self.resume_from.load(algorithm="ga")
            if self.resume_from is not None
            else None
        )
        if state is not None:
            payload = state.payload
            if payload["config"] != cfg:
                raise CheckpointError(
                    f"checkpoint {self.resume_from.path} was written under "
                    f"{payload['config']}, cannot resume with {cfg}"
                )
            population = list(payload["population"])
            results = list(payload["results"])
            best = payload["best"]
            history = list(payload["history"])
            distinct = set(payload["distinct"])
            start_generation = state.generation
            restore_rng_state(rng, state.rng_state)
        else:
            population = list(self.seeds[: cfg.population_size])
            population += [
                self.space.random_genome(rng)
                for _ in range(cfg.population_size - len(population))
            ]
            results = self._evaluate_population(population)
            best = self._best_of(results)
            history = []
            distinct = set(population)
            start_generation = 0
            # generation 0: a crash during generation 1 resumes here
            # instead of re-drawing and re-scoring the initial population
            self._save(0, rng, population, results, best, history, distinct)

        for generation in range(start_generation, cfg.generations):
            offspring: List[Genome] = [best.genome]  # elitism
            while len(offspring) < cfg.population_size:
                mother = self._tournament(population, results, rng)
                if rng.random() < cfg.crossover_rate:
                    father = self._tournament(population, results, rng)
                    child = self.space.crossover(mother, father, rng)
                else:
                    child = mother
                child = self.space.mutate(child, rng, cfg.mutation_rate)
                offspring.append(child)

            population = offspring
            results = self._evaluate_population(population)
            distinct.update(population)
            generation_best = self._best_of(results)
            if generation_best.better_than(best):
                best = generation_best
            history.append(best)
            self._save(
                generation + 1, rng, population, results, best, history, distinct
            )

        return GaOutcome(
            best=best,
            history=tuple(history),
            evaluations=len(distinct),
        )

    # ------------------------------------------------------------------

    def _save(
        self,
        generation: int,
        rng: np.random.Generator,
        population: List[Genome],
        results: List[FitnessResult],
        best: FitnessResult,
        history: List[FitnessResult],
        distinct: set,
    ) -> None:
        """Snapshot the complete loop state after a finished generation."""
        if self.checkpoint is None:
            return
        self.checkpoint.save(
            algorithm="ga",
            generation=generation,
            rng=rng,
            payload={
                "config": self.config,
                "population": list(population),
                "results": list(results),
                "best": best,
                "history": list(history),
                "distinct": sorted(distinct),
            },
        )

    def _tournament(
        self,
        population: List[Genome],
        results: List[FitnessResult],
        rng: np.random.Generator,
    ) -> Genome:
        indices = rng.integers(0, len(population), size=self.config.tournament_size)
        winner = int(indices[0])
        for i in indices[1:]:
            if results[int(i)].better_than(results[winner]):
                winner = int(i)
        return population[winner]

    @staticmethod
    def _best_of(results: List[FitnessResult]) -> FitnessResult:
        best = results[0]
        for record in results[1:]:
            if record.better_than(best):
                best = record
        return best
