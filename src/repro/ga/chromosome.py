"""Chromosome encoding for the architecture search.

Mirrors the paper's chromosome (Fig. 1): ``#PE width``, ``#PE height``,
``local buffer size``, ``global buffer size`` — plus the index of the
approximate multiplier, which the text says the GA selects from the
step-1 Pareto set.

Genes are indices into explicit value menus, which keeps crossover and
mutation trivially valid (any index vector decodes to a legal
architecture) and lets the search mix power-of-two NVDLA-like shapes
with the finer-grained geometries the paper's GA exploits to avoid
overdesign.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

from repro.accel.arch import AcceleratorConfig
from repro.approx.library import ApproxLibrary
from repro.engine.vectorized import uniform_crossover
from repro.errors import OptimizationError

Genome = Tuple[int, ...]

#: PE-array dimension menu (rows and columns draw from the same menu).
DIMENSION_CHOICES: Tuple[int, ...] = (2, 4, 6, 8, 12, 16, 20, 24, 28, 32, 40, 48, 56, 64)

#: Per-PE register-file menu in bytes.
LOCAL_BUFFER_CHOICES: Tuple[int, ...] = (0, 16, 32, 64, 96, 128, 192, 256)

#: Global convolution-buffer menu in KiB.
GLOBAL_BUFFER_KIB_CHOICES: Tuple[int, ...] = (
    16, 32, 48, 64, 96, 128, 192, 256, 384, 512, 768, 1024,
)


@dataclass(frozen=True)
class ChromosomeSpace:
    """Gene menus plus decode logic.

    Attributes:
        dimension_choices: menu for PE rows and PE columns.
        local_buffer_choices: menu for the per-PE register file (bytes).
        global_buffer_kib_choices: menu for the global buffer (KiB).
        n_multipliers: library size (last gene's range).
    """

    dimension_choices: Tuple[int, ...] = DIMENSION_CHOICES
    local_buffer_choices: Tuple[int, ...] = LOCAL_BUFFER_CHOICES
    global_buffer_kib_choices: Tuple[int, ...] = GLOBAL_BUFFER_KIB_CHOICES
    n_multipliers: int = 1

    def __post_init__(self) -> None:
        if self.n_multipliers < 1:
            raise OptimizationError("need at least one multiplier")
        for name in (
            "dimension_choices",
            "local_buffer_choices",
            "global_buffer_kib_choices",
        ):
            if not getattr(self, name):
                raise OptimizationError(f"{name} must not be empty")

    @property
    def gene_ranges(self) -> Tuple[int, ...]:
        """Number of valid values per gene position."""
        return (
            len(self.dimension_choices),   # pe_rows
            len(self.dimension_choices),   # pe_cols
            len(self.local_buffer_choices),
            len(self.global_buffer_kib_choices),
            self.n_multipliers,
        )

    @property
    def n_genes(self) -> int:
        return len(self.gene_ranges)

    @property
    def search_space_size(self) -> int:
        size = 1
        for r in self.gene_ranges:
            size *= r
        return size

    # ------------------------------------------------------------------

    def validate(self, genome: Genome) -> None:
        """Raise if a genome is out of range."""
        if len(genome) != self.n_genes:
            raise OptimizationError(
                f"genome has {len(genome)} genes, expected {self.n_genes}"
            )
        for position, (gene, bound) in enumerate(zip(genome, self.gene_ranges)):
            if not 0 <= gene < bound:
                raise OptimizationError(
                    f"gene {position} = {gene} outside [0, {bound})"
                )

    def decode(
        self,
        genome: Genome,
        library: ApproxLibrary,
        node_nm: int,
    ) -> AcceleratorConfig:
        """Materialise an :class:`AcceleratorConfig` from a genome."""
        self.validate(genome)
        if len(library) != self.n_multipliers:
            raise OptimizationError(
                f"library has {len(library)} entries; space expects "
                f"{self.n_multipliers}"
            )
        rows_i, cols_i, lb_i, gb_i, mult_i = genome
        return AcceleratorConfig(
            pe_rows=self.dimension_choices[rows_i],
            pe_cols=self.dimension_choices[cols_i],
            local_buffer_bytes=self.local_buffer_choices[lb_i],
            global_buffer_bytes=self.global_buffer_kib_choices[gb_i] * 1024,
            multiplier=library[mult_i],
            node_nm=node_nm,
        )

    def random_genome(self, rng: np.random.Generator) -> Genome:
        """Uniformly random valid genome."""
        return tuple(
            int(rng.integers(0, bound)) for bound in self.gene_ranges
        )

    def mutate(
        self, genome: Genome, rng: np.random.Generator, rate: float
    ) -> Genome:
        """Per-gene mutation: small index step or random reset.

        Stepping by +-1 exploits the menus' monotone ordering (nearby
        indices are nearby architectures); occasional resets keep the
        search global.
        """
        result = list(genome)
        for position, bound in enumerate(self.gene_ranges):
            if rng.random() >= rate:
                continue
            if rng.random() < 0.7:
                step = -1 if rng.random() < 0.5 else 1
                result[position] = int(np.clip(result[position] + step, 0, bound - 1))
            else:
                result[position] = int(rng.integers(0, bound))
        return tuple(result)

    @staticmethod
    def crossover(a: Genome, b: Genome, rng: np.random.Generator) -> Genome:
        """Uniform crossover (one RNG draw, as before)."""
        return uniform_crossover(a, b, rng)


    def encode_nearest(
        self,
        pe_rows: int,
        pe_cols: int,
        local_buffer_bytes: int,
        global_buffer_bytes: int,
        multiplier_index: int,
    ) -> Genome:
        """Genome whose decoded config is closest to the given values.

        Used to seed the GA population with known-good designs (the
        NVDLA baseline family); each field snaps to the nearest menu
        entry.
        """
        if not 0 <= multiplier_index < self.n_multipliers:
            raise OptimizationError(
                f"multiplier index {multiplier_index} outside "
                f"[0, {self.n_multipliers})"
            )
        return (
            _nearest_index(self.dimension_choices, pe_rows),
            _nearest_index(self.dimension_choices, pe_cols),
            _nearest_index(self.local_buffer_choices, local_buffer_bytes),
            _nearest_index(
                self.global_buffer_kib_choices, global_buffer_bytes // 1024
            ),
            multiplier_index,
        )


def _nearest_index(choices: Tuple[int, ...], value: int) -> int:
    return min(range(len(choices)), key=lambda i: abs(choices[i] - value))


def space_for_library(library: ApproxLibrary) -> ChromosomeSpace:
    """Chromosome space sized to a multiplier library."""
    return ChromosomeSpace(n_multipliers=len(library))


DEFAULT_SPACE = ChromosomeSpace()
