"""Genetic algorithm for the architecture + multiplier search (step 2).

* :mod:`repro.ga.chromosome` — integer-gene encoding of the paper's
  chromosome (PE width/height, local buffer, global buffer) plus the
  multiplier selection;
* :mod:`repro.ga.fitness` — CDP fitness with FPS and accuracy-drop
  constraints;
* :mod:`repro.ga.engine` — single-objective GA with Deb's
  feasibility-first constraint handling.
"""

from repro.ga.chromosome import ChromosomeSpace, DEFAULT_SPACE
from repro.ga.fitness import FitnessEvaluator, FitnessResult
from repro.ga.engine import GaConfig, GeneticAlgorithm, GaOutcome

__all__ = [
    "ChromosomeSpace",
    "DEFAULT_SPACE",
    "FitnessEvaluator",
    "FitnessResult",
    "GaConfig",
    "GeneticAlgorithm",
    "GaOutcome",
]
