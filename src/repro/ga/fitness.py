"""CDP fitness with performance and accuracy constraints.

The paper's optimisation: minimise the Carbon Delay Product subject to

* ``FPS >= min_fps`` (performance threshold: 30/40/50 in Fig. 2), and
* ``accuracy drop <= max_drop`` (0.5/1.0/2.0 % tiers).

Two delay conventions are supported:

* ``deadline_cdp`` (default, matches the paper's plots) — the delay term
  is floored at the application deadline ``1/min_fps``: performance
  beyond the edge application's requirement has no value, so among
  deadline-meeting designs the fitness reduces to embodied carbon.
  This is why the paper's GA-CDP points sit *at* the FPS thresholds
  rather than beyond them.
* ``pure_cdp`` — the textbook product ``carbon x achieved latency``,
  which rewards overshooting the deadline; kept for the fitness
  ablation benchmark.

Constraint violations are reported separately from fitness so the GA
can apply Deb's feasibility-first rules instead of fragile penalty
weights.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Union

from repro.accuracy.predictor import AccuracyPredictor
from repro.approx.library import ApproxLibrary
from repro.dataflow.network import Network
from repro.dataflow.performance import evaluate_network
from repro.errors import ConstraintError, MappingError
from repro.ga.chromosome import ChromosomeSpace, Genome
from repro.nn.zoo import workload


@dataclass(frozen=True)
class FitnessResult:
    """Everything the GA (and reports) need about one design point.

    Attributes:
        genome: the evaluated chromosome.
        cdp: carbon-delay product in gCO2-seconds (lower is better).
        carbon_g: embodied carbon (Eq. 1).
        fps: inferences per second.
        accuracy_drop_percent: predicted top-1 drop.
        violation: total normalised constraint violation (0 = feasible).
    """

    genome: Genome
    cdp: float
    carbon_g: float
    fps: float
    accuracy_drop_percent: float
    violation: float

    @property
    def feasible(self) -> bool:
        return self.violation == 0.0

    def better_than(self, other: "FitnessResult") -> bool:
        """Deb's rules: feasibility first, then fitness."""
        if self.feasible and not other.feasible:
            return True
        if not self.feasible and other.feasible:
            return False
        if not self.feasible and not other.feasible:
            return self.violation < other.violation
        return self.cdp < other.cdp


@dataclass
class FitnessEvaluator:
    """Memoised CDP fitness for one (network, node, constraints) setting.

    Attributes:
        network: workload being served.
        library: step-1 multiplier library.
        space: chromosome encoding (must match the library size).
        node_nm: technology node.
        min_fps: performance threshold.
        max_drop_percent: accuracy-drop threshold.
        predictor: accuracy oracle (shared across evaluators for cache
            reuse).
        grid: fab electricity-grid profile for Eq. 2.
        fitness_mode: ``deadline_cdp`` (paper behaviour) or ``pure_cdp``.
    """

    network: Union[str, Network]
    library: ApproxLibrary
    space: ChromosomeSpace
    node_nm: int
    min_fps: float
    max_drop_percent: float
    predictor: AccuracyPredictor = field(default_factory=AccuracyPredictor)
    grid: Union[str, float] = "taiwan"
    fitness_mode: str = "deadline_cdp"
    _cache: Dict[Genome, FitnessResult] = field(default_factory=dict, repr=False)

    def __post_init__(self) -> None:
        if self.min_fps <= 0:
            raise ConstraintError(f"min_fps must be positive, got {self.min_fps}")
        if self.max_drop_percent < 0:
            raise ConstraintError(
                f"max_drop_percent cannot be negative, got {self.max_drop_percent}"
            )
        if self.fitness_mode not in ("deadline_cdp", "pure_cdp"):
            raise ConstraintError(
                f"unknown fitness_mode {self.fitness_mode!r}; "
                "expected 'deadline_cdp' or 'pure_cdp'"
            )
        if isinstance(self.network, str):
            self.network = workload(self.network)

    @property
    def evaluations(self) -> int:
        """Distinct genomes evaluated so far."""
        return len(self._cache)

    def evaluate(self, genome: Genome) -> FitnessResult:
        """CDP + constraint evaluation of one chromosome."""
        cached = self._cache.get(genome)
        if cached is not None:
            return cached

        config = self.space.decode(genome, self.library, self.node_nm)
        assert isinstance(self.network, Network)

        try:
            performance = evaluate_network(self.network, config)
        except MappingError:
            # unmappable geometry: maximally infeasible, never selected
            result = FitnessResult(
                genome=genome,
                cdp=float("inf"),
                carbon_g=float("inf"),
                fps=0.0,
                accuracy_drop_percent=100.0,
                violation=float("inf"),
            )
            self._cache[genome] = result
            return result

        # imported here: repro.core's public API pulls in the designer,
        # which imports this module (cycle broken at function level)
        from repro.core.cdp import carbon_delay_product

        carbon = config.embodied_carbon(grid=self.grid).total_g
        drop = self.predictor.drop_percent(self.network, config.multiplier)
        if self.fitness_mode == "deadline_cdp":
            delay = max(performance.latency_s, 1.0 / self.min_fps)
        else:
            delay = performance.latency_s
        cdp = carbon_delay_product(carbon, delay)

        violation = 0.0
        if performance.fps < self.min_fps:
            violation += (self.min_fps - performance.fps) / self.min_fps
        if drop > self.max_drop_percent:
            scale = max(self.max_drop_percent, 0.1)
            violation += (drop - self.max_drop_percent) / scale

        result = FitnessResult(
            genome=genome,
            cdp=cdp,
            carbon_g=carbon,
            fps=performance.fps,
            accuracy_drop_percent=drop,
            violation=violation,
        )
        self._cache[genome] = result
        return result
