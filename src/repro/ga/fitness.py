"""CDP fitness with performance and accuracy constraints.

The paper's optimisation: minimise the Carbon Delay Product subject to

* ``FPS >= min_fps`` (performance threshold: 30/40/50 in Fig. 2), and
* ``accuracy drop <= max_drop`` (0.5/1.0/2.0 % tiers).

Two delay conventions are supported:

* ``deadline_cdp`` (default, matches the paper's plots) — the delay term
  is floored at the application deadline ``1/min_fps``: performance
  beyond the edge application's requirement has no value, so among
  deadline-meeting designs the fitness reduces to embodied carbon.
  This is why the paper's GA-CDP points sit *at* the FPS thresholds
  rather than beyond them.
* ``pure_cdp`` — the textbook product ``carbon x achieved latency``,
  which rewards overshooting the deadline; kept for the fitness
  ablation benchmark.

Constraint violations are reported separately from fitness so the GA
can apply Deb's feasibility-first rules instead of fragile penalty
weights.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Union

from repro.accuracy.predictor import AccuracyPredictor
from repro.approx.library import ApproxLibrary
from repro.dataflow.network import Network
from repro.dataflow.performance import evaluate_network
from repro.engine.batch import BatchNetworkEvaluator
from repro.engine.diskcache import FitnessDiskCache, context_fingerprint
from repro.errors import ConstraintError, MappingError
from repro.ga.chromosome import ChromosomeSpace, Genome
from repro.nn.zoo import workload


@dataclass(frozen=True)
class FitnessResult:
    """Everything the GA (and reports) need about one design point.

    Attributes:
        genome: the evaluated chromosome.
        cdp: carbon-delay product in gCO2-seconds (lower is better).
        carbon_g: embodied carbon (Eq. 1).
        fps: inferences per second.
        accuracy_drop_percent: predicted top-1 drop.
        violation: total normalised constraint violation (0 = feasible).
    """

    genome: Genome
    cdp: float
    carbon_g: float
    fps: float
    accuracy_drop_percent: float
    violation: float

    @property
    def feasible(self) -> bool:
        return self.violation == 0.0

    def better_than(self, other: "FitnessResult") -> bool:
        """Deb's rules: feasibility first, then fitness."""
        if self.feasible and not other.feasible:
            return True
        if not self.feasible and other.feasible:
            return False
        if not self.feasible and not other.feasible:
            return self.violation < other.violation
        return self.cdp < other.cdp


@dataclass
class FitnessEvaluator:
    """Memoised CDP fitness for one (network, node, constraints) setting.

    Attributes:
        network: workload being served.
        library: step-1 multiplier library.
        space: chromosome encoding (must match the library size).
        node_nm: technology node.
        min_fps: performance threshold.
        max_drop_percent: accuracy-drop threshold.
        predictor: accuracy oracle (shared across evaluators for cache
            reuse).
        grid: fab electricity-grid profile for Eq. 2.
        fitness_mode: ``deadline_cdp`` (paper behaviour) or ``pure_cdp``.
        cache_dir: optional directory for the on-disk fitness cache;
            when set, results persist across processes under a key that
            fingerprints everything fitness depends on.
    """

    network: Union[str, Network]
    library: ApproxLibrary
    space: ChromosomeSpace
    node_nm: int
    min_fps: float
    max_drop_percent: float
    predictor: AccuracyPredictor = field(default_factory=AccuracyPredictor)
    grid: Union[str, float] = "taiwan"
    fitness_mode: str = "deadline_cdp"
    cache_dir: Optional[str] = None
    _cache: Dict[Genome, FitnessResult] = field(default_factory=dict, repr=False)
    _disk: Optional[FitnessDiskCache] = field(default=None, repr=False)
    _batch: Optional[BatchNetworkEvaluator] = field(default=None, repr=False)

    def __post_init__(self) -> None:
        if self.min_fps <= 0:
            raise ConstraintError(f"min_fps must be positive, got {self.min_fps}")
        if self.max_drop_percent < 0:
            raise ConstraintError(
                f"max_drop_percent cannot be negative, got {self.max_drop_percent}"
            )
        if self.fitness_mode not in ("deadline_cdp", "pure_cdp"):
            raise ConstraintError(
                f"unknown fitness_mode {self.fitness_mode!r}; "
                "expected 'deadline_cdp' or 'pure_cdp'"
            )
        if isinstance(self.network, str):
            self.network = workload(self.network)
        if self.cache_dir is not None:
            self._disk = FitnessDiskCache(self.cache_dir, self.fingerprint())

    @property
    def evaluations(self) -> int:
        """Distinct genomes evaluated so far."""
        return len(self._cache)

    def fingerprint(self) -> str:
        """Identity of everything a fitness value depends on.

        Used as the on-disk cache key: network architecture, node,
        thresholds, grid, fitness mode, accuracy-model parameters, DRAM
        bandwidth, and the full multiplier-library identity (name,
        area, error statistics per entry).
        """
        from repro.dataflow.performance import DRAM_BANDWIDTH_GB_S

        assert isinstance(self.network, Network)
        return context_fingerprint(
            self.network.name,
            tuple(repr(layer) for layer in self.network.layers),
            repr(self.space),  # genome decoding depends on the menus
            self.node_nm,
            self.min_fps,
            self.max_drop_percent,
            self.grid,
            self.fitness_mode,
            repr(self.predictor.model),
            DRAM_BANDWIDTH_GB_S,
            tuple(
                (m.name, m.area_ge, m.origin, repr(m.metrics), repr(m.dnn_metrics))
                for m in self.library
            ),
        )

    def flush_cache(self) -> None:
        """Persist any new results to the on-disk cache (if enabled)."""
        if self._disk is not None:
            self._disk.flush()

    def evaluate(self, genome: Genome) -> FitnessResult:
        """CDP + constraint evaluation of one chromosome.

        This is the serial reference path; the batch path in
        :meth:`evaluate_population` returns bit-identical results.
        """
        cached = self._lookup(genome)
        if cached is not None:
            return cached

        config = self.space.decode(genome, self.library, self.node_nm)
        assert isinstance(self.network, Network)

        try:
            performance = evaluate_network(self.network, config)
        except MappingError:
            # unmappable geometry: maximally infeasible, never selected
            return self.store(genome, self._unmappable_result(genome))

        result = self._assemble(
            genome, config, performance.latency_s, performance.fps
        )
        return self.store(genome, result)

    def evaluate_population(self, genomes: Sequence[Genome]) -> List[FitnessResult]:
        """Score a whole generation at once (vectorized fast path).

        Dedups against the memo (and disk) cache, evaluates all cache
        misses through :class:`repro.engine.batch.BatchNetworkEvaluator`
        — the dataflow model run elementwise over the population's
        distinct geometries — and returns results in input order,
        bit-identical to calling :meth:`evaluate` per genome.
        """
        misses = [
            g for g in dict.fromkeys(genomes) if self._lookup(g) is None
        ]
        if misses:
            assert isinstance(self.network, Network)
            configs = [
                self.space.decode(g, self.library, self.node_nm)
                for g in misses
            ]
            geometries = [config.geometry_key() for config in configs]
            records = self._batch_evaluator().total_cycles(geometries)
            for genome, config, geometry, (cycles, mappable) in zip(
                misses, configs, geometries, records
            ):
                if not mappable:
                    self.store(genome, self._unmappable_result(genome))
                    continue
                # same two steps as NetworkPerformance.latency_s / .fps
                latency_s = cycles / geometry[5]
                fps = 1.0 / latency_s
                self.store(
                    genome, self._assemble(genome, config, latency_s, fps)
                )
        return [self._cache[g] for g in genomes]

    # evaluate_population persists every miss through self.store, so
    # PopulationEvaluator's batch mode must not backfill it again
    evaluate_population.self_storing = True

    # -- shared internals ---------------------------------------------------

    def _batch_evaluator(self) -> BatchNetworkEvaluator:
        if self._batch is None:
            assert isinstance(self.network, Network)
            self._batch = BatchNetworkEvaluator(self.network)
        return self._batch

    def _lookup(self, genome: Genome) -> Optional[FitnessResult]:
        cached = self._cache.get(genome)
        if cached is None and self._disk is not None:
            cached = self._disk.get(genome)
            if cached is not None:
                self._cache[genome] = cached
        return cached

    def store(self, genome: Genome, result: FitnessResult) -> FitnessResult:
        """Record a result in the memo (and disk) cache.

        Public so the population engine can backfill results computed
        in worker processes, where this evaluator's own side effects
        happen in a child and would otherwise be lost.
        """
        self._cache[genome] = result
        if self._disk is not None:
            self._disk.put(genome, result)
        return result

    @staticmethod
    def _unmappable_result(genome: Genome) -> FitnessResult:
        return FitnessResult(
            genome=genome,
            cdp=float("inf"),
            carbon_g=float("inf"),
            fps=0.0,
            accuracy_drop_percent=100.0,
            violation=float("inf"),
        )

    def _assemble(
        self,
        genome: Genome,
        config,
        latency_s: float,
        fps: float,
    ) -> FitnessResult:
        """CDP and Deb-rule violation from the timing of one design."""
        # imported here: repro.core's public API pulls in the designer,
        # which imports this module (cycle broken at function level)
        from repro.core.cdp import carbon_delay_product

        carbon = config.embodied_carbon(grid=self.grid).total_g
        drop = self.predictor.drop_percent(self.network, config.multiplier)
        if self.fitness_mode == "deadline_cdp":
            delay = max(latency_s, 1.0 / self.min_fps)
        else:
            delay = latency_s
        cdp = carbon_delay_product(carbon, delay)

        violation = 0.0
        if fps < self.min_fps:
            violation += (self.min_fps - fps) / self.min_fps
        if drop > self.max_drop_percent:
            scale = max(self.max_drop_percent, 0.1)
            violation += (drop - self.max_drop_percent) / scale

        return FitnessResult(
            genome=genome,
            cdp=cdp,
            carbon_g=carbon,
            fps=fps,
            accuracy_drop_percent=drop,
            violation=violation,
        )
