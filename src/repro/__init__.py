"""Carbon-aware approximate DNN accelerator design-space exploration.

Reproduction of "Late Breaking Results: Leveraging Approximate
Computing for Carbon-Aware DNN Accelerators" (DATE 2025).

Top-level convenience re-exports cover the common workflow::

    from repro import build_library, AccuracyPredictor, CarbonAwareDesigner

    library = build_library()
    designer = CarbonAwareDesigner(
        network="vgg16", node_nm=7, min_fps=30.0, max_drop_percent=1.0,
        library=library,
    )
    best = designer.run().best

See the package docstrings for the full substrate inventory:
:mod:`repro.circuits`, :mod:`repro.approx`, :mod:`repro.carbon`,
:mod:`repro.accel`, :mod:`repro.dataflow`, :mod:`repro.nn`,
:mod:`repro.accuracy`, :mod:`repro.ga`, :mod:`repro.engine`,
:mod:`repro.core`, :mod:`repro.experiments`.
"""

from repro.accuracy import AccuracyPredictor
from repro.approx import ApproxLibrary, build_library
from repro.core import (
    CarbonAwareDesigner,
    DesignPoint,
    carbon_delay_product,
    exact_sweep,
    smallest_exact_meeting_fps,
)
from repro.errors import ReproError

__version__ = "1.0.0"

__all__ = [
    "AccuracyPredictor",
    "ApproxLibrary",
    "build_library",
    "CarbonAwareDesigner",
    "DesignPoint",
    "carbon_delay_product",
    "exact_sweep",
    "smallest_exact_meeting_fps",
    "ReproError",
    "__version__",
]
